"""A7/A8 assumption auditing."""

import pytest

from repro.core.analyze import analyze_query
from repro.core.assumptions import check_assumptions
from repro.datasets import university_schema
from repro.sql.parser import parse_query


def audit(sql, schema):
    return check_assumptions(analyze_query(parse_query(sql), schema))


def codes(warnings):
    return [w.assumption for w in warnings]


def test_clean_inner_join_query(uni_schema_nofk):
    sql = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
    assert audit(sql, uni_schema_nofk) == []


def test_a7_satisfied_with_both_sides_selected(uni_schema_nofk):
    sql = (
        "SELECT i.id, t.id FROM instructor i "
        "FULL OUTER JOIN teaches t ON i.id = t.id"
    )
    assert audit(sql, uni_schema_nofk) == []


def test_a7_violated_when_one_side_invisible(uni_schema_nofk):
    sql = (
        "SELECT i.id FROM instructor i "
        "FULL OUTER JOIN teaches t ON i.id = t.id"
    )
    warnings = audit(sql, uni_schema_nofk)
    assert codes(warnings) == ["A7"]
    assert "right input" in warnings[0].message


def test_a7_star_select_is_fine(uni_schema_nofk):
    sql = "SELECT * FROM instructor i FULL OUTER JOIN teaches t ON i.id = t.id"
    assert audit(sql, uni_schema_nofk) == []


def test_left_outer_join_not_flagged(uni_schema_nofk):
    """A7 concerns full outer joins only."""
    sql = (
        "SELECT i.id FROM instructor i "
        "LEFT OUTER JOIN teaches t ON i.id = t.id"
    )
    assert audit(sql, uni_schema_nofk) == []


def test_a8_natural_full_outer_needs_noncommon_attrs(uni_schema_nofk):
    sql = (
        "SELECT t.course_id, p.course_id FROM teaches t "
        "NATURAL FULL OUTER JOIN prereq p"
    )
    warnings = audit(sql, uni_schema_nofk)
    # course_id is the common attribute: both sides expose only it.
    assert codes(warnings) == ["A8", "A8"]


def test_a8_satisfied_with_noncommon_attrs(uni_schema_nofk):
    sql = (
        "SELECT t.id, p.prereq_id FROM teaches t "
        "NATURAL FULL OUTER JOIN prereq p"
    )
    assert audit(sql, uni_schema_nofk) == []


def test_a2_relaxation_reported():
    schema = university_schema(allow_nullable_fks=True)
    sql = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
    warnings = audit(sql, schema)
    assert codes(warnings) == ["A2"]


def test_warning_renders():
    schema = university_schema(allow_nullable_fks=True)
    sql = "SELECT * FROM instructor"
    warnings = audit(sql, schema)
    assert str(warnings[0]).startswith("[A2]")
