"""Three-valued logic and NULL-aware value operations."""

from fractions import Fraction

import pytest

from repro.engine.values import (
    normalize_value,
    sql_and,
    sql_arith,
    sql_compare,
    sql_not,
    sql_or,
)
from repro.errors import ExecutionError


class TestTruthTables:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (True, True, True), (True, False, False), (False, False, False),
            (True, None, None), (None, True, None),
            (False, None, False), (None, False, False),
            (None, None, None),
        ],
    )
    def test_and(self, a, b, expected):
        assert sql_and(a, b) is expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (True, True, True), (True, False, True), (False, False, False),
            (True, None, True), (None, True, True),
            (False, None, None), (None, False, None),
            (None, None, None),
        ],
    )
    def test_or(self, a, b, expected):
        assert sql_or(a, b) is expected

    def test_not(self):
        assert sql_not(True) is False
        assert sql_not(False) is True
        assert sql_not(None) is None


class TestCompare:
    def test_null_operand_is_unknown(self):
        assert sql_compare("=", None, 1) is None
        assert sql_compare("<>", 1, None) is None
        assert sql_compare("<", None, None) is None

    @pytest.mark.parametrize(
        "op,l,r,expected",
        [
            ("=", 3, 3, True), ("=", 3, 4, False),
            ("<>", 3, 4, True), ("<>", 3, 3, False),
            ("<", 3, 4, True), ("<", 4, 3, False),
            (">", 4, 3, True), ("<=", 3, 3, True), (">=", 2, 3, False),
        ],
    )
    def test_int_comparisons(self, op, l, r, expected):
        assert sql_compare(op, l, r) is expected

    def test_string_equality(self):
        assert sql_compare("=", "CS", "CS") is True
        assert sql_compare("<>", "CS", "Biology") is True

    def test_string_ordering(self):
        assert sql_compare("<", "Apple", "Banana") is True

    def test_mixed_numeric_types_compare(self):
        assert sql_compare("=", 4, Fraction(4, 1)) is True
        assert sql_compare("=", 4, 4.0) is True

    def test_string_vs_number_raises(self):
        with pytest.raises(ExecutionError):
            sql_compare("=", "x", 1)

    def test_unknown_operator_raises(self):
        with pytest.raises(ExecutionError):
            sql_compare("~~", 1, 1)


class TestArith:
    def test_null_propagates(self):
        assert sql_arith("+", None, 1) is None
        assert sql_arith("*", 1, None) is None

    def test_basic_ops(self):
        assert sql_arith("+", 2, 3) == 5
        assert sql_arith("-", 2, 3) == -1
        assert sql_arith("*", 2, 3) == 6

    def test_division_is_exact(self):
        assert sql_arith("/", 1, 3) == Fraction(1, 3)
        assert sql_arith("/", 6, 3) == 2
        assert isinstance(sql_arith("/", 6, 3), int)

    def test_division_by_zero_is_null(self):
        assert sql_arith("/", 1, 0) is None

    def test_string_arithmetic_raises(self):
        with pytest.raises(ExecutionError):
            sql_arith("+", "a", 1)


class TestNormalize:
    def test_integral_fraction_becomes_int(self):
        assert normalize_value(Fraction(8, 2)) == 4
        assert isinstance(normalize_value(Fraction(8, 2)), int)

    def test_non_integral_fraction_kept(self):
        assert normalize_value(Fraction(1, 3)) == Fraction(1, 3)

    def test_integral_float_becomes_int(self):
        assert normalize_value(4.0) == 4
        assert isinstance(normalize_value(4.0), int)

    def test_none_passes_through(self):
        assert normalize_value(None) is None

    def test_string_passes_through(self):
        assert normalize_value("CS") == "CS"

    def test_bool_rejected(self):
        with pytest.raises(ExecutionError):
            normalize_value(True)
