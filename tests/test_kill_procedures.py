"""Unit tests for the individual kill-* procedures (Algorithms 2-4)."""

import pytest

from repro.core import XDataGenerator, analyze_query
from repro.core.attrs import Attr
from repro.core.kill_eqclass import nullification_sets
from repro.core import kill_aggregates, kill_comparison, kill_eqclass
from repro.datasets import schema_with_fks
from repro.engine.executor import execute_query
from repro.sql.parser import parse_query


def analyze(sql, schema):
    return analyze_query(parse_query(sql), schema)


class TestNullificationSets:
    """Algorithm 2 lines 5-7: the S/P split."""

    def test_no_fk_s_is_singleton(self, uni_schema_nofk):
        aq = analyze(
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
            uni_schema_nofk,
        )
        ec = aq.eq_classes[0]
        s_set, p_set = nullification_sets(aq, ec, Attr("i", "id"))
        assert s_set == [Attr("i", "id")]
        assert p_set == [Attr("t", "id")]

    def test_fk_pulls_referencing_attr_into_s(self):
        schema = schema_with_fks(["teaches.id"])
        aq = analyze(
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id", schema
        )
        ec = aq.eq_classes[0]
        s_set, p_set = nullification_sets(aq, ec, Attr("i", "id"))
        assert set(s_set) == {Attr("i", "id"), Attr("t", "id")}
        assert p_set == []

    def test_transitive_references_in_s(self):
        """a.x -> b.x -> c.x: nullifying c.x pulls both referers."""
        from repro.schema.catalog import Column, ForeignKey, Schema, Table
        from repro.schema.types import SqlType

        schema = Schema(
            [
                Table("c", [Column("x", SqlType.INT)], primary_key=("x",)),
                Table(
                    "b",
                    [Column("x", SqlType.INT)],
                    primary_key=("x",),
                    foreign_keys=[ForeignKey("b", ("x",), "c", ("x",))],
                ),
                Table(
                    "a",
                    [Column("x", SqlType.INT)],
                    foreign_keys=[ForeignKey("a", ("x",), "b", ("x",))],
                ),
                Table("d", [Column("x", SqlType.INT)]),
            ]
        )
        aq = analyze(
            "SELECT * FROM a, b, c, d "
            "WHERE a.x = b.x AND b.x = c.x AND c.x = d.x",
            schema,
        )
        ec = aq.eq_classes[0]
        s_set, p_set = nullification_sets(aq, ec, Attr("c", "x"))
        assert set(s_set) == {Attr("a", "x"), Attr("b", "x"), Attr("c", "x")}
        assert p_set == [Attr("d", "x")]

    def test_same_table_occurrences_nullified_together(self, uni_schema_nofk):
        aq = analyze(
            "SELECT * FROM course c1, course c2 "
            "WHERE c1.course_id = c2.course_id",
            uni_schema_nofk,
        )
        ec = aq.eq_classes[0]
        s_set, p_set = nullification_sets(aq, ec, Attr("c1", "course_id"))
        assert p_set == []


class TestEqClassDatasets:
    def test_dataset_exhibits_dangling_tuple(self, uni_schema_nofk):
        sql = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        nullify_i = next(
            d for d in suite.datasets if "nullify i.id" in d.target
        )
        teaches_ids = {
            row[0] for row in nullify_i.db.relation("teaches").rows
        }
        instructor_ids = {
            row[0] for row in nullify_i.db.relation("instructor").rows
        }
        # The teaches tuple has no matching instructor.
        assert teaches_ids
        assert not (teaches_ids & instructor_ids)

    def test_fk_support_tuple_added(self):
        """Nullifying a referencing FK column needs a second referenced row."""
        schema = schema_with_fks(["teaches.id"])
        sql = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
        suite = XDataGenerator(schema).generate(sql)
        nullify_t = next(
            d for d in suite.datasets if "nullify t.id" in d.target
        )
        # instructor must hold both the dangling value and the FK target.
        assert len(nullify_t.db.relation("instructor")) == 2

    def test_other_conditions_satisfied(self, uni_schema_nofk):
        """The difference must propagate: other joins stay satisfied."""
        sql = (
            "SELECT * FROM instructor i, teaches t, course c "
            "WHERE i.id = t.id AND t.course_id = c.course_id"
        )
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        nullify_i = next(
            d for d in suite.datasets if "nullify i.id" in d.target
        )
        # teaches joins course even though instructor doesn't match.
        t_row = nullify_i.db.relation("teaches").rows[0]
        c_ids = {row[0] for row in nullify_i.db.relation("course").rows}
        assert t_row[1] in c_ids


class TestComparisonDatasets:
    def test_three_numeric_cases(self, uni_schema_nofk):
        sql = "SELECT * FROM instructor i WHERE i.salary > 500"
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        targets = {d.target for d in suite.datasets if d.group == "comparison"}
        assert targets == {
            "cmp:i.salary > 500 force =",
            "cmp:i.salary > 500 force <",
            "cmp:i.salary > 500 force >",
        }

    def test_forced_relation_holds(self, uni_schema_nofk):
        sql = "SELECT * FROM instructor i WHERE i.salary > 500"
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        for dataset in suite.datasets:
            if dataset.group != "comparison":
                continue
            salary = dataset.db.relation("instructor").rows[0][3]
            if "force =" in dataset.target:
                assert salary == 500
            elif "force <" in dataset.target:
                assert salary < 500
            else:
                assert salary > 500

    def test_string_conjunct_gets_three_cases(self, uni_schema_nofk):
        """Strings get the full =/</> treatment (ordered interning)."""
        sql = "SELECT * FROM instructor i WHERE i.dept_name = 'CS'"
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        cmp_sets = [d for d in suite.datasets if d.group == "comparison"]
        assert len(cmp_sets) == 3
        for dataset in cmp_sets:
            dept = dataset.db.relation("instructor").rows[0][2]
            if "force =" in dataset.target:
                assert dept == "CS"
            elif "force <" in dataset.target:
                assert dept < "CS"
            else:
                assert dept > "CS"


class TestAggregateDatasets:
    def test_three_tuples_one_group(self, uni_schema_nofk):
        sql = (
            "SELECT i.dept_name, SUM(i.salary) FROM instructor i "
            "GROUP BY i.dept_name"
        )
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        agg = next(d for d in suite.datasets if d.group == "aggregate")
        rows = agg.db.relation("instructor").rows
        assert len(rows) == 3
        depts = {row[2] for row in rows}
        assert len(depts) == 1  # same group (S0)
        salaries = [row[3] for row in rows]
        # S1: a duplicated non-zero value; S2: a distinct third value.
        assert len(set(salaries)) == 2
        assert all(s != 0 for s in salaries)

    def test_all_aggregate_mutants_disagree(self, uni_schema_nofk):
        """The aggregate dataset distinguishes every operator pair."""
        sql = (
            "SELECT i.dept_name, SUM(i.salary) FROM instructor i "
            "GROUP BY i.dept_name"
        )
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        agg = next(d for d in suite.datasets if d.group == "aggregate")
        results = {}
        for func, distinct in [
            ("SUM", False), ("SUM", True), ("AVG", False), ("AVG", True),
            ("COUNT", False), ("COUNT", True), ("MIN", False), ("MAX", False),
        ]:
            inner = f"DISTINCT i.salary" if distinct else "i.salary"
            q = parse_query(
                f"SELECT i.dept_name, {func}({inner}) FROM instructor i "
                f"GROUP BY i.dept_name"
            )
            value = execute_query(q, agg.db).rows[0][1]
            results[(func, distinct)] = value
        values = list(results.values())
        assert len(set(values)) == len(values), results

    def test_pk_on_aggregated_attr_relaxes_s1(self):
        """When (G, A) is unique, S1 is dropped (Algorithm 4 lines 11-13)."""
        from repro.schema.catalog import Column, Schema, Table
        from repro.schema.types import SqlType

        schema = Schema(
            [
                Table(
                    "t",
                    [Column("g", SqlType.INT), Column("a", SqlType.INT)],
                    primary_key=("g", "a"),
                )
            ]
        )
        sql = "SELECT t.g, SUM(t.a) FROM t GROUP BY t.g"
        suite = XDataGenerator(schema).generate(sql)
        agg = next(d for d in suite.datasets if d.group == "aggregate")
        assert agg.relaxation is not None

    def test_group_by_is_whole_pk_relaxes_s2_too(self):
        """Groups are single tuples: S1 and S2 both dropped."""
        from repro.schema.catalog import Column, Schema, Table
        from repro.schema.types import SqlType

        schema = Schema(
            [
                Table(
                    "t",
                    [Column("g", SqlType.INT), Column("a", SqlType.INT)],
                    primary_key=("g",),
                )
            ]
        )
        sql = "SELECT t.g, SUM(t.a) FROM t GROUP BY t.g"
        suite = XDataGenerator(schema).generate(sql)
        agg = next(d for d in suite.datasets if d.group == "aggregate")
        assert "S1" in (agg.relaxation or "")

    def test_aggregate_over_join(self, uni_schema_nofk):
        sql = (
            "SELECT i.dept_name, COUNT(t.course_id) "
            "FROM instructor i, teaches t WHERE i.id = t.id "
            "GROUP BY i.dept_name"
        )
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        agg = next(d for d in suite.datasets if d.group == "aggregate")
        # Three joined tuple sets.
        assert len(agg.db.relation("teaches")) == 3
