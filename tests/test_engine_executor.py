"""Executor tests: joins, outer joins, NULL semantics, aggregation."""

from collections import Counter
from fractions import Fraction

import pytest

from repro.engine import Database, execute_query
from repro.engine.executor import execute_plan
from repro.engine.plan import compile_query
from repro.errors import ExecutionError
from repro.schema.catalog import Column, Schema, Table
from repro.schema.types import SqlType
from repro.sql.parser import parse_query


@pytest.fixture
def db():
    schema = Schema(
        [
            Table("r", [Column("a", SqlType.INT), Column("b", SqlType.INT)]),
            Table("s", [Column("a", SqlType.INT), Column("c", SqlType.INT)]),
            Table(
                "g",
                [
                    Column("k", SqlType.VARCHAR),
                    Column("v", SqlType.INT),
                ],
            ),
        ]
    )
    db = Database(schema)
    db.insert_rows("r", [(1, 10), (2, 20), (3, 30)])
    db.insert_rows("s", [(1, 100), (1, 101), (4, 400)])
    db.insert_rows("g", [("x", 5), ("x", 5), ("x", 7), ("y", 0)])
    return db


def run(db, sql):
    return execute_query(parse_query(sql), db)


def bag(relation):
    return Counter(relation.rows)


class TestScanProject:
    def test_select_star(self, db):
        result = run(db, "SELECT * FROM r")
        assert len(result) == 3
        assert result.columns == ["r.a", "r.b"]

    def test_projection_order(self, db):
        result = run(db, "SELECT b, a FROM r")
        assert result.rows[0] == (10, 1)

    def test_expression_projection(self, db):
        result = run(db, "SELECT a + 1 FROM r")
        assert [row[0] for row in result.rows] == [2, 3, 4]

    def test_duplicates_preserved_bag_semantics(self, db):
        result = run(db, "SELECT k FROM g")
        assert bag(result)[("x",)] == 3

    def test_select_distinct(self, db):
        result = run(db, "SELECT DISTINCT k FROM g")
        assert sorted(result.rows) == [("x",), ("y",)]

    def test_qualified_star(self, db):
        result = run(db, "SELECT r.* FROM r, s")
        assert result.columns == ["r.a", "r.b"]
        assert len(result) == 9  # cross product


class TestWhere:
    def test_filter(self, db):
        assert len(run(db, "SELECT * FROM r WHERE a > 1")) == 2

    def test_conjunction(self, db):
        assert len(run(db, "SELECT * FROM r WHERE a > 1 AND b < 30")) == 1

    def test_string_filter(self, db):
        assert len(run(db, "SELECT * FROM g WHERE k = 'y'")) == 1

    def test_arithmetic_predicate(self, db):
        result = run(db, "SELECT * FROM r, s WHERE r.a = s.a + 1")
        # s.a values: 1,1,4 -> r.a = 2,2,5 -> matches (2,*) twice
        assert len(result) == 2


class TestJoins:
    def test_inner_join(self, db):
        result = run(db, "SELECT * FROM r JOIN s ON r.a = s.a")
        assert len(result) == 2  # r.1 matches s.1 twice

    def test_comma_join_equals_explicit(self, db):
        implicit = run(db, "SELECT * FROM r, s WHERE r.a = s.a")
        explicit = run(db, "SELECT * FROM r JOIN s ON r.a = s.a")
        assert bag(implicit) == bag(explicit)

    def test_left_outer_join(self, db):
        result = run(db, "SELECT * FROM r LEFT OUTER JOIN s ON r.a = s.a")
        assert len(result) == 4  # 2 matches + r.2, r.3 padded
        padded = [row for row in result.rows if row[2] is None]
        assert len(padded) == 2

    def test_right_outer_join(self, db):
        result = run(db, "SELECT * FROM r RIGHT OUTER JOIN s ON r.a = s.a")
        assert len(result) == 3  # 2 matches + s.4 padded
        padded = [row for row in result.rows if row[0] is None]
        assert len(padded) == 1

    def test_full_outer_join(self, db):
        result = run(db, "SELECT * FROM r FULL OUTER JOIN s ON r.a = s.a")
        assert len(result) == 5

    def test_left_right_mirror(self, db):
        left = run(db, "SELECT r.a, s.a FROM r LEFT OUTER JOIN s ON r.a = s.a")
        right = run(db, "SELECT r.a, s.a FROM s RIGHT OUTER JOIN r ON r.a = s.a")
        assert bag(left) == bag(right)

    def test_cross_join(self, db):
        assert len(run(db, "SELECT * FROM r CROSS JOIN s")) == 9

    def test_padded_rows_filtered_by_where(self, db):
        """NULL-rejecting WHERE turns an outer join back into inner."""
        outer = run(
            db,
            "SELECT * FROM r LEFT OUTER JOIN s ON r.a = s.a WHERE s.c > 0",
        )
        inner = run(db, "SELECT * FROM r JOIN s ON r.a = s.a WHERE s.c > 0")
        assert bag(outer) == bag(inner)

    def test_join_on_multiple_conditions(self, db):
        result = run(db, "SELECT * FROM r JOIN s ON r.a = s.a AND s.c > 100")
        assert len(result) == 1


class TestNaturalJoins:
    def test_natural_join_common_column_coalesced(self, db):
        result = run(db, "SELECT * FROM r NATURAL JOIN s")
        assert result.columns == ["a", "r.b", "s.c"]
        assert len(result) == 2

    def test_natural_full_outer_join_coalesce_values(self, db):
        result = run(db, "SELECT * FROM r NATURAL FULL OUTER JOIN s")
        a_values = sorted(row[0] for row in result.rows)
        # Both r-only (2, 3) and s-only (4) keys appear in the merged column.
        assert a_values == [1, 1, 2, 3, 4]

    def test_natural_join_qualified_reference_still_resolves(self, db):
        result = run(db, "SELECT r.a FROM r NATURAL JOIN s")
        assert len(result) == 2


class TestAggregates:
    def test_global_count_star(self, db):
        assert run(db, "SELECT COUNT(*) FROM g").rows == [(4,)]

    def test_global_aggregates(self, db):
        result = run(db, "SELECT MIN(v), MAX(v), SUM(v) FROM g")
        assert result.rows == [(0, 7, 17)]

    def test_avg_exact(self, db):
        result = run(db, "SELECT AVG(v) FROM g")
        assert result.rows == [(Fraction(17, 4),)]

    def test_group_by(self, db):
        result = run(db, "SELECT k, COUNT(v) FROM g GROUP BY k")
        assert sorted(result.rows) == [("x", 3), ("y", 1)]

    def test_distinct_aggregates(self, db):
        result = run(
            db,
            "SELECT COUNT(DISTINCT v), SUM(DISTINCT v) FROM g WHERE k = 'x'",
        )
        assert result.rows == [(2, 12)]

    def test_empty_input_global_aggregate(self, db):
        result = run(db, "SELECT COUNT(v), SUM(v), MIN(v) FROM g WHERE v > 99")
        assert result.rows == [(0, None, None)]

    def test_empty_input_grouped_aggregate_has_no_rows(self, db):
        result = run(db, "SELECT k, COUNT(v) FROM g WHERE v > 99 GROUP BY k")
        assert result.rows == []

    def test_aggregate_ignores_nulls(self):
        schema = Schema([Table("t", [Column("v", SqlType.INT)])])
        db = Database(schema)
        db.insert_rows("t", [(1,), (None,), (3,)])
        result = run(db, "SELECT COUNT(v), SUM(v), AVG(v) FROM t")
        assert result.rows == [(2, 4, 2)]

    def test_count_star_counts_null_rows(self):
        schema = Schema([Table("t", [Column("v", SqlType.INT)])])
        db = Database(schema)
        db.insert_rows("t", [(None,), (None,)])
        assert run(db, "SELECT COUNT(*) FROM t").rows == [(2,)]

    def test_aggregate_arithmetic(self, db):
        result = run(db, "SELECT SUM(v) + COUNT(v) FROM g")
        assert result.rows == [(21,)]

    def test_group_by_with_aggregate_over_join(self, db):
        result = run(
            db,
            "SELECT r.a, COUNT(s.c) FROM r LEFT OUTER JOIN s ON r.a = s.a "
            "GROUP BY r.a",
        )
        assert sorted(result.rows) == [(1, 2), (2, 0), (3, 0)]


class TestErrors:
    def test_unknown_column_raises(self, db):
        with pytest.raises(ExecutionError):
            run(db, "SELECT zz FROM r")

    def test_ambiguous_column_raises(self, db):
        with pytest.raises(ExecutionError):
            run(db, "SELECT a FROM r, s")

    def test_star_with_group_by_raises(self, db):
        with pytest.raises(ExecutionError):
            run(db, "SELECT * FROM g GROUP BY k")

    def test_duplicate_output_names_deduplicated(self, db):
        result = run(db, "SELECT a, a FROM r")
        assert result.columns == ["a", "a#2"]
