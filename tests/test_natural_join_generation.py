"""End-to-end generation and kill checking for NATURAL-join queries.

Covers assumptions A7/A8 territory: natural joins coalesce common
columns, so mutant construction must preserve the written tree's output
shape under ``SELECT *``.
"""

import pytest

from repro.core import XDataGenerator
from repro.datasets import schema_with_fks
from repro.mutation import enumerate_mutants
from repro.testing import classify_survivors, evaluate_suite


def run(sql, fks=(), include_full=False):
    schema = schema_with_fks(list(fks))
    suite = XDataGenerator(schema).generate(sql)
    space = enumerate_mutants(suite.analyzed, include_full_outer=include_full)
    report = evaluate_suite(space, suite.databases)
    classification = classify_survivors(space, report.survivors, trials=12)
    return suite, report, classification


def test_natural_inner_join_star_select():
    sql = "SELECT * FROM teaches NATURAL JOIN prereq"
    suite, report, classification = run(sql)
    assert suite.non_original_count() >= 1
    assert classification.missed == []
    # No spurious kills: survivors + killed == total and killed mutants
    # really differ (sanity covered by evaluate_suite itself).
    assert report.killed + len(report.survivors) == report.total


def test_natural_join_explicit_select_reorders_freely():
    sql = (
        "SELECT t.id, p.prereq_id FROM teaches t NATURAL JOIN prereq p"
    )
    suite, report, classification = run(sql)
    assert classification.missed == []
    assert report.killed == report.total  # both outer mutants die


def test_natural_full_outer_join_a8():
    """A8: one non-common attribute from each input in the select list."""
    sql = (
        "SELECT t.id, p.prereq_id FROM teaches t "
        "NATURAL FULL OUTER JOIN prereq p"
    )
    suite, report, classification = run(sql, include_full=True)
    assert classification.missed == []
    assert report.killed >= 2


def test_natural_join_with_fk():
    sql = "SELECT * FROM course NATURAL JOIN prereq"
    suite, report, classification = run(
        sql, fks=["takes.course_id"]
    )
    assert classification.missed == []


def test_natural_join_dataset_exhibits_difference():
    sql = "SELECT * FROM teaches NATURAL JOIN prereq"
    schema = schema_with_fks([])
    suite = XDataGenerator(schema).generate(sql)
    nullify = [d for d in suite.datasets if d.group == "eqclass"]
    assert nullify
    for dataset in nullify:
        teaches_ids = {
            row[1] for row in dataset.db.relation("teaches").rows
        }
        prereq_ids = {
            row[0] for row in dataset.db.relation("prereq").rows
        }
        # One side has a course_id value the other side lacks.
        assert teaches_ids != prereq_ids
