"""Property-based tests over the extension features."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import GenConfig, XDataGenerator
from repro.datasets import schema_with_fks
from repro.engine.executor import execute_query
from repro.engine.export import from_csv_map, to_csv_map
from repro.engine.integrity import find_violations
from repro.schema.catalog import Column, Schema, Table
from repro.schema.types import SqlType
from repro.sql.parser import parse_query
from repro.testing import evaluate_suite, random_database
from repro.mutation import enumerate_mutants


# ---------------------------------------------------------------------------
# HAVING: for random thresholds, the three forced datasets behave
# ---------------------------------------------------------------------------


@st.composite
def having_cases(draw):
    func = draw(st.sampled_from(["SUM", "MIN", "MAX", "AVG", "COUNT"]))
    op = draw(st.sampled_from(["=", "<", ">", "<=", ">="]))
    constant = draw(st.integers(2, 40))
    return func, op, constant


@settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(having_cases())
def test_having_original_dataset_nonempty_when_feasible(case):
    func, op, constant = case
    schema = schema_with_fks([])
    sql = (
        f"SELECT i.dept_name, {func}(i.salary) FROM instructor i "
        f"GROUP BY i.dept_name HAVING {func}(i.salary) {op} {constant}"
    )
    suite = XDataGenerator(schema).generate(sql)
    for dataset in suite.datasets:
        assert find_violations(dataset.db) == []
    original = suite.datasets[0]
    result = execute_query(parse_query(sql), original.db)
    # COUNT thresholds beyond MAX_COPIES can be infeasible; everything
    # else must produce a visible group.
    if func != "COUNT" or constant <= 6:
        assert len(result) >= 1, (case, original.db.pretty())


# ---------------------------------------------------------------------------
# CSV export round-trips arbitrary generated instances
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000), st.integers(1, 5))
def test_csv_roundtrip_of_random_instances(seed, rows):
    schema = schema_with_fks(["teaches.id", "takes.id"])
    db = random_database(schema, random.Random(seed), rows_per_table=rows)
    rebuilt = from_csv_map(schema, to_csv_map(db))
    for table in db.table_names:
        assert rebuilt.relation(table).rows == db.relation(table).rows


# ---------------------------------------------------------------------------
# String-order: generated comparison datasets respect lexicographic order
# ---------------------------------------------------------------------------


@settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.text(
        alphabet=st.characters(min_codepoint=65, max_codepoint=90),
        min_size=1,
        max_size=6,
    )
)
def test_string_comparison_datasets_bracket_the_constant(constant):
    schema = schema_with_fks([])
    escaped = constant.replace("'", "''")
    sql = f"SELECT i.name FROM instructor i WHERE i.name >= '{escaped}'"
    suite = XDataGenerator(schema).generate(sql)
    for dataset in suite.datasets:
        if dataset.group != "comparison":
            continue
        name = dataset.db.relation("instructor").rows[0][1]
        if "force =" in dataset.target:
            assert name == constant
        elif "force <" in dataset.target:
            assert name < constant
        else:
            assert name > constant


# ---------------------------------------------------------------------------
# Null tests: the flip mutant is always killed on random nullable schemas
# ---------------------------------------------------------------------------


@settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.booleans(), st.integers(0, 3))
def test_nulltest_flip_always_killed(negated, extra_cols):
    columns = [Column("id", SqlType.INT), Column("v", SqlType.INT)]
    for i in range(extra_cols):
        columns.append(Column(f"x{i}", SqlType.INT))
    schema = Schema([Table("t", columns, primary_key=("id",))])
    keyword = "IS NOT NULL" if negated else "IS NULL"
    sql = f"SELECT t.id FROM t WHERE t.v {keyword}"
    suite = XDataGenerator(schema).generate(sql)
    space = enumerate_mutants(suite.analyzed)
    report = evaluate_suite(space, suite.databases)
    outcomes = [o for o in report.outcomes if o.mutant.kind == "nulltest"]
    assert outcomes and all(o.killed for o in outcomes)
