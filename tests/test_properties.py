"""Property-based tests (hypothesis) for core invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import XDataGenerator
from repro.datasets import FK_EDGES, schema_with_fks
from repro.engine import Database, execute_query
from repro.engine.integrity import find_violations
from repro.mutation import enumerate_mutants
from repro.schema.catalog import Column, Schema, Table
from repro.schema.types import SqlType
from repro.solver import Solver
from repro.solver import builders as b
from repro.solver.search import eval_formula
from repro.solver.solver import unfold_formula
from repro.sql.parser import parse_query
from repro.sql.printer import to_sql
from repro.testing import evaluate_suite, random_database
from repro.testing.killcheck import result_signature

# ---------------------------------------------------------------------------
# Solver properties
# ---------------------------------------------------------------------------

_VARS = ["v0", "v1", "v2", "v3"]


@st.composite
def atoms(draw):
    left = draw(st.sampled_from(_VARS))
    op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    if draw(st.booleans()):
        right = b.var(draw(st.sampled_from(_VARS)))
    else:
        right = b.const(draw(st.integers(-5, 5)))
    offset = draw(st.integers(-3, 3))
    return b.compare(op, b.var(left), right + b.const(offset))


@st.composite
def formulas(draw):
    pool = draw(st.lists(atoms(), min_size=1, max_size=4))
    shape = draw(st.sampled_from(["atom", "disj", "forall", "exists", "neg"]))
    if shape == "atom":
        return pool[0]
    if shape == "disj":
        return b.disj(pool)
    if shape == "forall":
        return b.forall(pool)
    if shape == "exists":
        return b.exists(pool)
    return b.neg(b.disj(pool))


@settings(max_examples=120, deadline=None)
@given(st.lists(formulas(), min_size=1, max_size=6))
def test_solver_models_satisfy_constraints(formula_list):
    solver = Solver()
    for name in _VARS:
        solver.int_var(name)
    solver.add_all(formula_list)
    model = solver.solve()
    if model is not None:
        for formula in formula_list:
            assert (
                eval_formula(unfold_formula(formula), model.assignment) is True
            )


@settings(max_examples=60, deadline=None)
@given(st.lists(formulas(), min_size=1, max_size=4))
def test_unfolded_and_lazy_modes_agree(formula_list):
    solver = Solver()
    for name in _VARS:
        solver.int_var(name)
    solver.add_all(formula_list)
    unfolded = solver.solve(unfold=True)
    lazy = solver.solve(unfold=False)
    assert (unfolded is None) == (lazy is None)


# Hypothesis-discovered regressions in the lazy mode, pinned: the first
# made the subset search report UNSAT while the full problem has a model
# (the only break-point value lived in a not-yet-learned quantifier);
# the second blew the node limit when domains were widened wholesale
# instead of confirming the UNSAT against the full unfolded problem.
_LAZY_MODE_REGRESSIONS = [
    [
        b.forall([
            b.compare("<>", b.var("v0"), b.const(0)),
            b.compare("<>", b.var("v0"), b.const(0)),
            b.compare("<", b.var("v1"), b.const(0)),
            b.compare("<", b.var("v0"), b.var("v1")),
        ]),
        b.forall([b.compare("=", b.var("v0"), b.const(-2))]),
    ],
    [
        b.forall([
            b.compare("=", b.var("v0"), b.const(5)),
            b.compare("=", b.var("v0"), b.const(-2)),
            b.compare("=", b.var("v0"), b.const(-7)),
            b.compare("=", b.var("v0"), b.const(2)),
        ]),
        b.neg(b.disj([
            b.compare("<>", b.var("v3"), b.var("v0")),
            b.compare("=", b.var("v2"), b.var("v0") + b.const(2)),
            b.compare("<", b.var("v1"), b.const(-3)),
            b.compare("<=", b.var("v1"), b.var("v3") + b.const(-3)),
        ])),
        b.compare("<>", b.var("v3"), b.var("v0")),
        b.forall([b.compare("=", b.var("v3"), b.const(1))]),
    ],
]


def test_lazy_mode_pinned_regressions():
    for formula_list in _LAZY_MODE_REGRESSIONS:
        solver = Solver()
        for name in _VARS:
            solver.int_var(name)
        solver.add_all(formula_list)
        unfolded = solver.solve(unfold=True)
        lazy = solver.solve(unfold=False)
        assert (unfolded is None) == (lazy is None)


# ---------------------------------------------------------------------------
# Parser / printer round-trip over generated queries
# ---------------------------------------------------------------------------


@st.composite
def chain_queries(draw):
    tables = draw(
        st.lists(
            st.sampled_from(["instructor", "teaches", "course", "student"]),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    aliases = [f"t{i}" for i in range(len(tables))]
    from_clause = ", ".join(f"{t} {a}" for t, a in zip(tables, aliases))
    conjuncts = []
    for first, second in zip(aliases, aliases[1:]):
        conjuncts.append(f"{first}.id = {second}.id")
    if draw(st.booleans()):
        conjuncts.append(f"{aliases[0]}.id > {draw(st.integers(0, 9))}")
    sql = f"SELECT * FROM {from_clause}"
    if conjuncts:
        sql += " WHERE " + " AND ".join(conjuncts)
    return sql


@settings(max_examples=60, deadline=None)
@given(chain_queries())
def test_parse_print_roundtrip(sql):
    query = parse_query(sql)
    assert parse_query(to_sql(query)) == query


# ---------------------------------------------------------------------------
# Engine algebraic laws on random databases
# ---------------------------------------------------------------------------


def _random_rs_db(seed):
    schema = Schema(
        [
            Table("r", [Column("a", SqlType.INT), Column("b", SqlType.INT)]),
            Table("s", [Column("a", SqlType.INT), Column("c", SqlType.INT)]),
        ]
    )
    rng = random.Random(seed)
    db = Database(schema)
    for _ in range(rng.randrange(0, 5)):
        db.insert("r", (rng.randrange(3), rng.randrange(3)))
    for _ in range(rng.randrange(0, 5)):
        db.insert("s", (rng.randrange(3), rng.randrange(3)))
    return db


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000))
def test_join_commutativity(seed):
    db = _random_rs_db(seed)
    ab = execute_query(
        parse_query("SELECT r.a, s.c FROM r JOIN s ON r.a = s.a"), db
    )
    ba = execute_query(
        parse_query("SELECT r.a, s.c FROM s JOIN r ON r.a = s.a"), db
    )
    assert result_signature(ab) == result_signature(ba)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000))
def test_outer_join_contains_inner_join(seed):
    db = _random_rs_db(seed)
    inner = execute_query(
        parse_query("SELECT * FROM r JOIN s ON r.a = s.a"), db
    )
    outer = execute_query(
        parse_query("SELECT * FROM r LEFT OUTER JOIN s ON r.a = s.a"), db
    )
    _, inner_bag = result_signature(inner)
    _, outer_bag = result_signature(outer)
    assert all(outer_bag[row] >= count for row, count in inner_bag.items())


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000))
def test_left_right_outer_mirror(seed):
    db = _random_rs_db(seed)
    left = execute_query(
        parse_query("SELECT r.a, r.b, s.c FROM r LEFT OUTER JOIN s ON r.a = s.a"),
        db,
    )
    right = execute_query(
        parse_query("SELECT r.a, r.b, s.c FROM s RIGHT OUTER JOIN r ON r.a = s.a"),
        db,
    )
    assert result_signature(left) == result_signature(right)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000))
def test_selection_pushdown_equivalence(seed):
    db = _random_rs_db(seed)
    above = execute_query(
        parse_query(
            "SELECT * FROM r JOIN s ON r.a = s.a WHERE r.b > 1"
        ),
        db,
    )
    pushed = execute_query(
        parse_query(
            "SELECT * FROM r, s WHERE r.a = s.a AND r.b > 1"
        ),
        db,
    )
    assert result_signature(above) == result_signature(pushed)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000))
def test_full_outer_is_union_of_left_and_right_pads(seed):
    db = _random_rs_db(seed)
    full = execute_query(
        parse_query("SELECT * FROM r FULL OUTER JOIN s ON r.a = s.a"), db
    )
    left = execute_query(
        parse_query("SELECT * FROM r LEFT OUTER JOIN s ON r.a = s.a"), db
    )
    _, full_bag = result_signature(full)
    _, left_bag = result_signature(left)
    assert all(full_bag[row] >= count for row, count in left_bag.items())


# ---------------------------------------------------------------------------
# Random legal instances + generator legality
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 6))
def test_random_database_always_legal(seed, rows):
    schema = schema_with_fks(list(FK_EDGES))
    db = random_database(schema, random.Random(seed), rows_per_table=rows)
    assert find_violations(db) == []


@st.composite
def generation_cases(draw):
    fks = draw(
        st.lists(
            st.sampled_from(sorted(FK_EDGES)), max_size=4, unique=True
        )
    )
    sql = draw(
        st.sampled_from(
            [
                "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
                "SELECT * FROM instructor i, teaches t, course c "
                "WHERE i.id = t.id AND t.course_id = c.course_id",
                "SELECT * FROM student s, takes k "
                "WHERE s.id = k.id AND s.tot_cred > 50",
                "SELECT i.dept_name, COUNT(t.course_id) FROM instructor i, "
                "teaches t WHERE i.id = t.id GROUP BY i.dept_name",
                "SELECT * FROM course c WHERE c.credits >= 3",
            ]
        )
    )
    return fks, sql


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(generation_cases())
def test_generated_datasets_always_legal_and_original_nonempty(case):
    fks, sql = case
    schema = schema_with_fks(fks)
    suite = XDataGenerator(schema).generate(sql)
    assert suite.datasets, "at least the original-query dataset"
    for dataset in suite.datasets:
        assert find_violations(dataset.db) == []
    original = suite.datasets[0]
    result = execute_query(parse_query(sql), original.db)
    assert len(result) >= 1


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(generation_cases())
def test_killed_plus_equivalent_covers_space(case):
    """No mutant is both unkilled and distinguishable on the suite's own
    datasets — evaluate_suite's survivors never disagree with the
    original on any dataset of the suite (sanity of the kill matrix)."""
    fks, sql = case
    schema = schema_with_fks(fks)
    suite = XDataGenerator(schema).generate(sql)
    space = enumerate_mutants(suite.analyzed)
    report = evaluate_suite(space, suite.databases)
    for outcome in report.outcomes:
        assert outcome.killed == bool(outcome.killed_by)
