"""Join-condition mutant extension: wrong attribute, missing conjunct."""

import pytest

from repro.core import GenConfig, XDataGenerator, analyze_query
from repro.datasets import schema_with_fks
from repro.mutation import enumerate_mutants
from repro.mutation.joincond import (
    missing_conjunct_mutants,
    wrong_attribute_mutants,
)
from repro.sql.parser import parse_query
from repro.testing import classify_survivors, evaluate_suite

CHAIN3 = (
    "SELECT i.name, c.title FROM instructor i, teaches t, course c "
    "WHERE i.id = t.id AND t.course_id = c.course_id"
)


def analyze(sql, schema):
    return analyze_query(parse_query(sql), schema)


class TestSpace:
    def test_wrong_attribute_mutants_enumerated(self, uni_schema_nofk):
        aq = analyze(CHAIN3, uni_schema_nofk)
        mutants = wrong_attribute_mutants(aq)
        descriptions = {m.description for m in mutants}
        assert any("t.sec_id = c.course_id" in d for d in descriptions)
        # Only type-compatible siblings: no name/dept columns for id joins.
        assert not any("i.name = t.id" in d for d in descriptions)

    def test_missing_conjunct_mutants_enumerated(self, uni_schema_nofk):
        aq = analyze(CHAIN3, uni_schema_nofk)
        mutants = missing_conjunct_mutants(aq)
        assert len(mutants) == 2

    def test_selection_conjuncts_not_dropped(self, uni_schema_nofk):
        sql = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id AND i.salary > 0"
        aq = analyze(sql, uni_schema_nofk)
        assert len(missing_conjunct_mutants(aq)) == 1

    def test_space_flag_off_by_default(self, uni_schema_nofk):
        space = enumerate_mutants(CHAIN3, uni_schema_nofk)
        assert not space.by_kind("joincond-wrong")
        space = enumerate_mutants(
            CHAIN3, uni_schema_nofk, include_join_conditions=True
        )
        assert space.by_kind("joincond-wrong")
        assert space.by_kind("joincond-missing")


class TestKilling:
    def test_missing_conjunct_killed_by_staple_suite(self, uni_schema_nofk):
        """Nullification datasets cover forgotten-join errors for free."""
        suite = XDataGenerator(uni_schema_nofk).generate(CHAIN3)
        space = enumerate_mutants(
            suite.analyzed,
            include_join=False,
            include_comparison=False,
            include_join_conditions=True,
        )
        report = evaluate_suite(space, suite.databases)
        missing = [
            o for o in report.outcomes if o.mutant.kind == "joincond-missing"
        ]
        assert missing and all(o.killed for o in missing)

    def test_anti_coincidence_datasets_generated(self, uni_schema_nofk):
        config = GenConfig(include_join_condition_datasets=True)
        suite = XDataGenerator(uni_schema_nofk, config).generate(CHAIN3)
        joincond = [d for d in suite.datasets if d.group == "joincond"]
        assert len(joincond) == 2  # one per equi-join conjunct

    def test_wrong_attribute_mutants_all_killed_with_extension(
        self, uni_schema_nofk
    ):
        config = GenConfig(include_join_condition_datasets=True)
        suite = XDataGenerator(uni_schema_nofk, config).generate(CHAIN3)
        space = enumerate_mutants(
            suite.analyzed,
            include_join=False,
            include_comparison=False,
            include_join_conditions=True,
        )
        report = evaluate_suite(space, suite.databases)
        survivors = [
            m for m in report.survivors if m.kind == "joincond-wrong"
        ]
        classification = classify_survivors(space, survivors, trials=15)
        assert classification.missed == [], [
            str(c.mutant) for c in classification.missed
        ]

    def test_default_counts_unchanged(self, uni_schema_nofk):
        """The extension is off by default: Table I counts stay intact."""
        suite = XDataGenerator(uni_schema_nofk).generate(CHAIN3)
        assert suite.count("joincond") == 0
        assert suite.non_original_count() == 4
