"""Join-order space: shape enumeration, node conditions, plan building."""

import pytest

from repro.core.analyze import analyze_query
from repro.core.joinorders import (
    JoinGraph,
    LeafShape,
    NodeShape,
    enumerate_shapes,
    node_conditions,
    shape_nodes,
    shape_to_plan,
)
from repro.engine.executor import execute_plan
from repro.engine.plan import compile_query
from repro.errors import GenerationError
from repro.sql.parser import parse_query
from repro.testing.killcheck import result_signature


def analyze(sql, schema):
    return analyze_query(parse_query(sql), schema)


CHAIN3 = (
    "SELECT * FROM instructor i, teaches t, course c "
    "WHERE i.id = t.id AND t.course_id = c.course_id"
)


class TestEnumeration:
    def test_single_relation_one_leaf(self, uni_schema):
        shapes = enumerate_shapes(analyze("SELECT * FROM instructor", uni_schema))
        assert shapes == [LeafShape("instructor")]

    def test_two_relations_one_shape(self, uni_schema):
        aq = analyze(
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id", uni_schema
        )
        shapes = enumerate_shapes(aq)
        assert len(shapes) == 1
        assert isinstance(shapes[0], NodeShape)

    def test_chain_of_three_two_shapes(self, uni_schema):
        """((i t) c) and (i (t c)) — Catalan(2) = 2 for a chain."""
        shapes = enumerate_shapes(analyze(CHAIN3, uni_schema))
        assert len(shapes) == 2

    def test_shared_attribute_allows_extra_shape(self, uni_schema):
        """Fig. 2: one equivalence class over 3 relations joins any pair."""
        aq = analyze(
            "SELECT * FROM teaches t, course c, prereq p "
            "WHERE t.course_id = c.course_id AND c.course_id = p.course_id",
            uni_schema,
        )
        shapes = enumerate_shapes(aq)
        assert len(shapes) == 3  # {tc}p, {tp}c, {cp}t

    def test_chain_of_four_catalan(self, uni_schema):
        aq = analyze(
            "SELECT * FROM instructor i, teaches t, course c, department d "
            "WHERE i.id = t.id AND t.course_id = c.course_id "
            "AND c.dept_name = d.dept_name",
            uni_schema,
        )
        assert len(enumerate_shapes(aq)) == 5  # Catalan(3)

    def test_no_cross_products_introduced(self, uni_schema):
        shapes = enumerate_shapes(analyze(CHAIN3, uni_schema))
        aq = analyze(CHAIN3, uni_schema)
        for shape in shapes:
            for node in shape_nodes(shape):
                assert node_conditions(aq, node), "node without a condition"

    def test_cap_enforced(self, uni_schema):
        aq = analyze(CHAIN3, uni_schema)
        with pytest.raises(GenerationError):
            enumerate_shapes(aq, cap=1)


class TestJoinGraph:
    def test_connectivity(self, uni_schema):
        graph = JoinGraph(analyze(CHAIN3, uni_schema))
        assert graph.connected(frozenset({"i", "t"}))
        assert graph.connected(frozenset({"i", "t", "c"}))
        assert not graph.connected(frozenset({"i", "c"}))

    def test_joinable_requires_cross_condition(self, uni_schema):
        graph = JoinGraph(analyze(CHAIN3, uni_schema))
        assert graph.joinable(frozenset({"i"}), frozenset({"t"}))
        assert graph.joinable(frozenset({"i", "t"}), frozenset({"c"}))
        assert not graph.joinable(frozenset({"i"}), frozenset({"c"}))


class TestConditions:
    def test_derived_condition_on_reordered_tree(self, uni_schema):
        """Equivalence class supplies A.x = C.x for the (t p) join."""
        aq = analyze(
            "SELECT * FROM teaches t, course c, prereq p "
            "WHERE t.course_id = c.course_id AND c.course_id = p.course_id",
            uni_schema,
        )
        node = NodeShape(LeafShape("t"), LeafShape("p"))
        conditions = node_conditions(aq, node)
        assert len(conditions) == 1
        rendered = str(conditions[0])
        assert "t.course_id" in rendered and "p.course_id" in rendered


class TestPlans:
    def test_all_inner_shapes_equal_original(self, uni_db):
        """Every join order of an inner query gives the original result."""
        aq = analyze(CHAIN3, uni_db.schema)
        baseline = result_signature(
            execute_plan(compile_query(aq.query), uni_db)
        )
        for shape in enumerate_shapes(aq):
            plan = shape_to_plan(aq, shape)
            assert result_signature(execute_plan(plan, uni_db)) == baseline

    def test_selections_pushed_to_leaves(self, uni_db):
        sql = (
            "SELECT * FROM instructor i, teaches t "
            "WHERE i.id = t.id AND i.salary > 70000"
        )
        aq = analyze(sql, uni_db.schema)
        baseline = result_signature(
            execute_plan(compile_query(aq.query), uni_db)
        )
        for shape in enumerate_shapes(aq):
            plan = shape_to_plan(aq, shape)
            assert result_signature(execute_plan(plan, uni_db)) == baseline

    def test_aggregate_on_top(self, uni_db):
        sql = (
            "SELECT i.dept_name, COUNT(t.course_id) "
            "FROM instructor i, teaches t WHERE i.id = t.id "
            "GROUP BY i.dept_name"
        )
        aq = analyze(sql, uni_db.schema)
        baseline = result_signature(
            execute_plan(compile_query(aq.query), uni_db)
        )
        for shape in enumerate_shapes(aq):
            assert (
                result_signature(execute_plan(shape_to_plan(aq, shape), uni_db))
                == baseline
            )
