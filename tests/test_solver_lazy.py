"""Lazy quantifier instantiation (the 'without unfolding' mode)."""

import pytest

from repro.solver import Solver
from repro.solver import builders as b
from repro.solver.search import SearchConfig, eval_formula
from repro.solver.solver import (
    _contains_quantifier,
    _instance_count,
    unfold_formula,
)
from repro.solver.terms import Conj, Disj, Quantified


class TestHelpers:
    def test_contains_quantifier(self):
        atom = b.eq(b.var("x"), b.const(1))
        assert not _contains_quantifier(atom)
        assert _contains_quantifier(b.forall([atom, atom]))
        assert _contains_quantifier(Conj((atom, b.exists([atom]))))
        assert _contains_quantifier(b.neg(Disj((atom, b.forall([atom])))))

    def test_instance_count(self):
        atom = b.eq(b.var("x"), b.const(1))
        assert _instance_count(atom) == 0
        assert _instance_count(b.forall([atom, atom, atom])) == 3
        nested = b.forall([b.exists([atom, atom])])
        assert _instance_count(nested) == 3

    def test_unfold_forall_is_conj(self):
        atom = b.eq(b.var("x"), b.const(1))
        unfolded = unfold_formula(b.forall([atom, atom]))
        assert isinstance(unfolded, Conj)

    def test_unfold_exists_is_disj(self):
        atom = b.eq(b.var("x"), b.const(1))
        assert isinstance(unfold_formula(b.exists([atom, atom])), Disj)

    def test_unfold_recursive(self):
        inner = b.exists([b.eq(b.var("x"), b.const(1))])
        unfolded = unfold_formula(b.forall([inner]))
        assert not _contains_quantifier(unfolded)


class TestLazySolve:
    def test_iterations_recorded(self):
        solver = Solver()
        x = solver.int_var("x")
        slots = [solver.int_var(f"s{i}") for i in range(3)]
        # Ground part pins nothing; the not-exists must be learned.
        solver.add(b.eq(x, b.const(0)))
        solver.add(b.not_exists([b.eq(s, x) for s in slots]))
        model = solver.solve(unfold=False)
        assert model is not None
        assert solver.last_stats.iterations >= 2  # at least one restart
        assert not solver.last_stats.unfolded

    def test_model_satisfies_quantifieds(self):
        solver = Solver()
        x = solver.int_var("x")
        ys = [solver.int_var(f"y{i}") for i in range(4)]
        solver.add(b.exists([b.eq(x, y) for y in ys]))
        solver.add(b.forall([b.ge(y, b.const(3)) for y in ys]))
        model = solver.solve(unfold=False)
        for formula in solver.formulas:
            assert eval_formula(formula, model.assignment) is True

    def test_unsat_from_quantifier_interaction(self):
        solver = Solver()
        x = solver.int_var("x")
        ys = [solver.int_var(f"y{i}") for i in range(2)]
        solver.add(b.exists([b.eq(x, y) for y in ys]))          # x in ys
        solver.add(b.not_exists([b.eq(y, x) for y in ys]))      # x not in ys
        assert solver.solve(unfold=False) is None

    def test_ground_only_problem_single_iteration(self):
        solver = Solver()
        x = solver.int_var("x")
        solver.add(b.eq(x, b.const(3)))
        model = solver.solve(unfold=False)
        assert model.raw("x") == 3
        assert solver.last_stats.iterations == 1

    def test_fallback_when_naive_search_overruns(self, monkeypatch):
        """When the suggestion-free pass hits the node budget, the lazy
        loop retries that restart with suggestions enabled."""
        from repro.errors import SolverLimitError
        from repro.solver import search as search_module

        original_run = search_module.GroundSearch.run
        calls = []

        def flaky_run(self):
            calls.append(self._config.enable_suggestions)
            if not self._config.enable_suggestions:
                raise SolverLimitError("synthetic overrun")
            return original_run(self)

        monkeypatch.setattr(search_module.GroundSearch, "run", flaky_run)
        solver = Solver()
        x = solver.int_var("x")
        solver.add(b.eq(x, b.const(7)))
        solver.add(b.forall([b.le(x, b.const(1000))]))
        model = solver.solve(unfold=False)
        assert model is not None and model.raw("x") == 7
        # The naive pass ran first and failed; the retry had suggestions.
        assert calls[0] is False
        assert calls[1] is True

    def test_budget_guard_raises_eventually(self):
        """A pathological alternation cannot loop forever."""
        from repro.errors import SolverLimitError

        solver = Solver(SearchConfig(node_limit=100_000))
        x = solver.int_var("x")
        # Quantifier demanding x = 0 and ground part forbidding it can
        # never converge positively; it must be reported UNSAT (not hang).
        solver.add(b.ne(x, b.const(0)))
        solver.add(b.forall([b.eq(x, b.const(0))]))
        assert solver.solve(unfold=False) is None
