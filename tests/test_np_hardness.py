"""Executable version of the Section IV-A NP-hardness reduction.

The reduction: containment of conjunctive queries Q2 ⊆ Q1 holds iff no
dataset distinguishes ``Q2 JOIN Q1`` from ``Q2 LEFT-OUTER-JOIN Q1`` —
i.e. iff the join/outer-join mutation is *equivalent*.  We exercise the
two directions on small conjunctive queries where containment is known.
"""

from repro.core import XDataGenerator
from repro.engine.executor import execute_query
from repro.schema.catalog import Column, Schema, Table
from repro.schema.types import SqlType
from repro.sql.parser import parse_query
from repro.testing.killcheck import result_signature


def _schema():
    return Schema(
        [
            Table("e", [Column("src", SqlType.INT), Column("dst", SqlType.INT)]),
        ]
    )


def test_non_containment_yields_distinguishing_dataset():
    """Q1 = paths of length 2, Q2 = edges: Q2 not contained in Q1.

    The generator must produce a dataset where some edge does not extend
    to a 2-path — exactly a witness of non-containment.
    """
    schema = _schema()
    # Edge (x, y) with an extension (y, z): the join side.
    sql = (
        "SELECT e1.src, e1.dst FROM e e1, e e2 WHERE e1.dst = e2.src"
    )
    suite = XDataGenerator(schema).generate(sql)
    # The nullification dataset for e2.src is the witness: an e1 edge with
    # no continuation.
    witness = next(
        (d for d in suite.datasets if "nullify e2.src" in d.target), None
    )
    assert witness is not None
    inner = parse_query(sql)
    outer = parse_query(
        "SELECT e1.src, e1.dst FROM e e1 LEFT OUTER JOIN e e2 ON e1.dst = e2.src"
    )
    inner_result = result_signature(execute_query(inner, witness.db))
    outer_result = result_signature(execute_query(outer, witness.db))
    assert inner_result != outer_result


def test_containment_yields_equivalence():
    """Identity containment: joining a relation with itself on equal keys.

    Q2 = Q1 = all edges; every edge trivially matches itself, so the
    outer-join mutation is equivalent and the generator reports the
    nullification group as skipped.
    """
    schema = _schema()
    sql = (
        "SELECT e1.src FROM e e1, e e2 "
        "WHERE e1.src = e2.src AND e1.dst = e2.dst"
    )
    suite = XDataGenerator(schema).generate(sql)
    # All four nullification targets hit the same relation array: P empty.
    assert suite.non_original_count() == 0
    assert len(suite.skipped) == 4
    assert all(s.reason == "structurally-equivalent" for s in suite.skipped)
