"""Workload-level generation and cross-query minimization."""

import pytest

from repro.datasets import schema_with_fks
from repro.testing import evaluate_suite
from repro.testing.workload import generate_workload

QUERIES = {
    "teaching": (
        "SELECT i.name, c.title FROM instructor i, teaches t, course c "
        "WHERE i.id = t.id AND t.course_id = c.course_id"
    ),
    "load": (
        "SELECT i.dept_name, COUNT(t.course_id) FROM instructor i, teaches t "
        "WHERE i.id = t.id GROUP BY i.dept_name"
    ),
    "credits": "SELECT c.title FROM course c WHERE c.credits > 3",
}


@pytest.fixture(scope="module")
def workload():
    schema = schema_with_fks(["teaches.id"])
    return generate_workload(schema, QUERIES)


def test_workload_covers_every_query(workload):
    assert len(workload.entries) == 3
    for entry in workload.entries:
        assert entry.total > 0


def test_combined_smaller_than_concatenation(workload):
    generated = sum(len(e.suite.datasets) for e in workload.entries)
    assert len(workload.datasets) < generated


def test_no_kill_lost_by_combination(workload):
    """Each query kills at least as much on the combined datasets as on
    its own suite."""
    for entry in workload.entries:
        own = evaluate_suite(entry.space, entry.suite.databases)
        combined = evaluate_suite(entry.space, workload.databases)
        assert combined.killed >= own.killed
        assert entry.killed == combined.killed


def test_original_datasets_kept(workload):
    groups = [d.group for d in workload.datasets]
    assert groups.count("original") == 3


def test_provenance_parallel_to_datasets(workload):
    assert len(workload.provenance) == len(workload.datasets)
    for (entry_index, dataset_index), dataset in zip(
        workload.provenance, workload.datasets
    ):
        entry = workload.entries[entry_index]
        assert entry.suite.datasets[dataset_index] is dataset


def test_summary_renders(workload):
    text = workload.summary()
    assert "workload: 3 queries" in text
    assert "teaching" in text


def test_no_minimize_keeps_everything():
    schema = schema_with_fks([])
    small = {"q": "SELECT * FROM course c WHERE c.credits > 3"}
    suite = generate_workload(schema, small, minimize=False)
    assert len(suite.datasets) == len(suite.entries[0].suite.datasets)
