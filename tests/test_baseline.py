"""Baseline [14] generator tests."""

import pytest

from repro.baseline import ShortPaperGenerator
from repro.core import XDataGenerator
from repro.datasets import schema_with_fks, university_sample_database
from repro.mutation import enumerate_mutants
from repro.testing import evaluate_suite

TWO = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"


@pytest.fixture
def nofk_setup():
    schema = schema_with_fks([])
    return schema, university_sample_database(schema)


class TestBaselineDatasets:
    def test_one_dataset_per_relation_plus_base(self, nofk_setup):
        schema, sample = nofk_setup
        suite = ShortPaperGenerator(schema, sample).generate(TWO)
        assert len(suite.datasets) == 3  # base + 2 emptied

    def test_emptied_relation_is_empty(self, nofk_setup):
        schema, sample = nofk_setup
        suite = ShortPaperGenerator(schema, sample).generate(TWO)
        emptied = next(
            d for d in suite.datasets if "emptying teaches" in d.purpose
        )
        assert len(emptied.db.relation("teaches")) == 0
        assert len(emptied.db.relation("instructor")) > 0

    def test_no_fk_all_datasets_legal(self, nofk_setup):
        schema, sample = nofk_setup
        suite = ShortPaperGenerator(schema, sample).generate(TWO)
        assert suite.illegal_count == 0

    def test_fk_makes_emptied_dataset_illegal(self):
        """The documented [14] weakness: no foreign-key handling."""
        schema = schema_with_fks(["teaches.id"])
        sample = university_sample_database(schema)
        suite = ShortPaperGenerator(schema, sample).generate(TWO)
        assert suite.illegal_count >= 1

    def test_kills_join_mutants_without_fks(self, nofk_setup):
        schema, sample = nofk_setup
        suite = ShortPaperGenerator(schema, sample).generate(TWO)
        space = enumerate_mutants(TWO, schema)
        report = evaluate_suite(space, suite.databases)
        assert report.killed == report.total == 2

    def test_misses_comparison_mutants(self, nofk_setup):
        """No synthetic data: boundary datasets cannot be produced."""
        schema, sample = nofk_setup
        sql = "SELECT * FROM instructor i WHERE i.salary > 71000"
        baseline = ShortPaperGenerator(schema, sample).generate(sql)
        space = enumerate_mutants(sql, schema, include_join=False)
        baseline_report = evaluate_suite(space, baseline.databases)
        xdata = XDataGenerator(schema).generate(sql)
        xdata_report = evaluate_suite(space, xdata.databases)
        # 71000 is not a salary in the sample database, so the baseline has
        # no row at the comparison boundary and cannot separate > from >=;
        # XData synthesises the boundary tuple (Section V-E).
        assert xdata_report.killed == xdata_report.total
        assert baseline_report.killed < xdata_report.killed
