"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError, UnsupportedSqlError
from repro.sql.ast import (
    Aggregate,
    BinaryOp,
    ColumnRef,
    Comparison,
    Join,
    JoinKind,
    Literal,
    Star,
    TableRef,
    query_table_refs,
)
from repro.sql.parser import parse_query


class TestSelectList:
    def test_star(self):
        q = parse_query("SELECT * FROM t")
        assert isinstance(q.select_items[0].expr, Star)
        assert q.select_items[0].expr.table is None

    def test_qualified_star(self):
        q = parse_query("SELECT t.* FROM t")
        assert q.select_items[0].expr == Star("t")

    def test_column_list(self):
        q = parse_query("SELECT a, b, c FROM t")
        assert [str(i.expr) for i in q.select_items] == ["a", "b", "c"]

    def test_qualified_columns(self):
        q = parse_query("SELECT t.a FROM t")
        assert q.select_items[0].expr == ColumnRef("t", "a")

    def test_alias_with_as(self):
        q = parse_query("SELECT a AS x FROM t")
        assert q.select_items[0].alias == "x"

    def test_alias_without_as(self):
        q = parse_query("SELECT a x FROM t")
        assert q.select_items[0].alias == "x"

    def test_arithmetic_in_select(self):
        q = parse_query("SELECT a + 1 FROM t")
        expr = q.select_items[0].expr
        assert isinstance(expr, BinaryOp)
        assert expr.op == "+"

    def test_distinct_flag(self):
        assert parse_query("SELECT DISTINCT a FROM t").distinct
        assert not parse_query("SELECT ALL a FROM t").distinct
        assert not parse_query("SELECT a FROM t").distinct


class TestAggregates:
    @pytest.mark.parametrize("func", ["MIN", "MAX", "SUM", "AVG", "COUNT"])
    def test_plain_aggregates(self, func):
        q = parse_query(f"SELECT {func}(a) FROM t")
        agg = q.select_items[0].expr
        assert isinstance(agg, Aggregate)
        assert agg.func == func
        assert not agg.distinct

    def test_distinct_aggregate(self):
        agg = parse_query("SELECT SUM(DISTINCT a) FROM t").select_items[0].expr
        assert agg.distinct

    def test_count_star(self):
        agg = parse_query("SELECT COUNT(*) FROM t").select_items[0].expr
        assert isinstance(agg.arg, Star)

    def test_sum_star_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT SUM(*) FROM t")

    def test_aggregate_over_expression(self):
        agg = parse_query("SELECT SUM(a + 1) FROM t").select_items[0].expr
        assert isinstance(agg.arg, BinaryOp)

    def test_query_has_aggregates_property(self):
        assert parse_query("SELECT SUM(a) FROM t").has_aggregates
        assert parse_query("SELECT SUM(a) + 1 FROM t").has_aggregates
        assert not parse_query("SELECT a FROM t").has_aggregates


class TestFromClause:
    def test_single_table(self):
        q = parse_query("SELECT * FROM instructor")
        ref = q.from_items[0]
        assert ref == TableRef("instructor", None)
        assert ref.binding == "instructor"

    def test_alias(self):
        ref = parse_query("SELECT * FROM instructor i").from_items[0]
        assert ref.alias == "i"
        assert ref.binding == "i"

    def test_alias_with_as(self):
        ref = parse_query("SELECT * FROM instructor AS i").from_items[0]
        assert ref.alias == "i"

    def test_comma_list(self):
        q = parse_query("SELECT * FROM a, b, c")
        assert len(q.from_items) == 3

    def test_inner_join_with_on(self):
        q = parse_query("SELECT * FROM a JOIN b ON a.x = b.x")
        join = q.from_items[0]
        assert isinstance(join, Join)
        assert join.kind is JoinKind.INNER
        assert len(join.condition) == 1

    def test_inner_keyword_optional(self):
        q = parse_query("SELECT * FROM a INNER JOIN b ON a.x = b.x")
        assert q.from_items[0].kind is JoinKind.INNER

    @pytest.mark.parametrize(
        "sql_kind,kind",
        [
            ("LEFT OUTER JOIN", JoinKind.LEFT),
            ("LEFT JOIN", JoinKind.LEFT),
            ("RIGHT OUTER JOIN", JoinKind.RIGHT),
            ("RIGHT JOIN", JoinKind.RIGHT),
            ("FULL OUTER JOIN", JoinKind.FULL),
            ("FULL JOIN", JoinKind.FULL),
        ],
    )
    def test_outer_joins(self, sql_kind, kind):
        q = parse_query(f"SELECT * FROM a {sql_kind} b ON a.x = b.x")
        assert q.from_items[0].kind is kind

    def test_cross_join_has_no_on(self):
        q = parse_query("SELECT * FROM a CROSS JOIN b")
        join = q.from_items[0]
        assert join.kind is JoinKind.CROSS
        assert join.condition == ()

    def test_natural_join(self):
        q = parse_query("SELECT * FROM a NATURAL JOIN b")
        join = q.from_items[0]
        assert join.natural
        assert join.kind is JoinKind.INNER

    def test_natural_full_outer_join(self):
        q = parse_query("SELECT * FROM a NATURAL FULL OUTER JOIN b")
        assert q.from_items[0].kind is JoinKind.FULL
        assert q.from_items[0].natural

    def test_natural_join_with_on_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM a NATURAL JOIN b ON a.x = b.x")

    def test_join_without_on_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM a JOIN b")

    def test_chained_joins_left_associative(self):
        q = parse_query(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        )
        outer = q.from_items[0]
        assert isinstance(outer.left, Join)
        assert isinstance(outer.right, TableRef)

    def test_parenthesised_join_tree(self):
        q = parse_query(
            "SELECT * FROM a JOIN (b JOIN c ON b.y = c.y) ON a.x = b.x"
        )
        outer = q.from_items[0]
        assert isinstance(outer.right, Join)

    def test_multi_condition_on_clause(self):
        q = parse_query("SELECT * FROM a JOIN b ON a.x = b.x AND a.y = b.y")
        assert len(q.from_items[0].condition) == 2

    def test_table_refs_flattened_in_order(self):
        q = parse_query("SELECT * FROM a, b JOIN c ON b.x = c.x, d")
        assert [r.name for r in query_table_refs(q)] == ["a", "b", "c", "d"]


class TestWhereClause:
    def test_single_comparison(self):
        q = parse_query("SELECT * FROM t WHERE a = 5")
        assert q.where == (Comparison("=", ColumnRef(None, "a"), Literal(5)),)

    def test_and_chain_flattened(self):
        q = parse_query("SELECT * FROM t WHERE a = 1 AND b = 2 AND c = 3")
        assert len(q.where) == 3

    @pytest.mark.parametrize("op", ["=", "<", ">", "<=", ">=", "<>"])
    def test_all_comparison_operators(self, op):
        q = parse_query(f"SELECT * FROM t WHERE a {op} 5")
        assert q.where[0].op == op

    def test_bang_equals_becomes_diamond(self):
        assert parse_query("SELECT * FROM t WHERE a != 5").where[0].op == "<>"

    def test_string_literal(self):
        q = parse_query("SELECT * FROM t WHERE a = 'CS'")
        assert q.where[0].right == Literal("CS")

    def test_negative_literal(self):
        q = parse_query("SELECT * FROM t WHERE a = -5")
        assert q.where[0].right == Literal(-5)

    def test_arithmetic_condition(self):
        q = parse_query("SELECT * FROM t, s WHERE t.a = s.b + 10")
        right = q.where[0].right
        assert isinstance(right, BinaryOp)
        assert right.op == "+"

    def test_precedence_mul_over_add(self):
        q = parse_query("SELECT * FROM t WHERE a = b + c * 2")
        right = q.where[0].right
        assert right.op == "+"
        assert isinstance(right.right, BinaryOp)
        assert right.right.op == "*"

    def test_parenthesised_expression(self):
        q = parse_query("SELECT * FROM t WHERE a = (b + c) * 2")
        right = q.where[0].right
        assert right.op == "*"


class TestGroupBy:
    def test_group_by_single(self):
        q = parse_query("SELECT a, COUNT(b) FROM t GROUP BY a")
        assert q.group_by == (ColumnRef(None, "a"),)

    def test_group_by_qualified(self):
        q = parse_query("SELECT t.a, COUNT(b) FROM t GROUP BY t.a")
        assert q.group_by == (ColumnRef("t", "a"),)

    def test_group_by_multiple(self):
        q = parse_query("SELECT a, b, COUNT(c) FROM t GROUP BY a, b")
        assert len(q.group_by) == 2


class TestRejections:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM t WHERE a = 1 OR b = 2",
            "SELECT * FROM t WHERE NOT a = 1",
            "SELECT * FROM t WHERE a IN (1, 2)",
            "SELECT * FROM t WHERE a BETWEEN 1 AND 2",
            "SELECT * FROM t WHERE a LIKE 'x%'",
            "SELECT * FROM t UNION SELECT * FROM s",
            "SELECT * FROM (SELECT * FROM t)",
            "SELECT * FROM t WHERE a = (SELECT MAX(b) FROM s)",
            "SELECT * FROM t ORDER BY a",
        ],
    )
    def test_unsupported_constructs(self, sql):
        with pytest.raises(UnsupportedSqlError):
            parse_query(sql)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM t garbage extra ,")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT a WHERE a = 1")

    def test_empty_input_rejected(self):
        with pytest.raises(ParseError):
            parse_query("")

    def test_semicolon_accepted(self):
        parse_query("SELECT * FROM t;")

    def test_double_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM t; SELECT * FROM s")
