"""XDataGenerator (Algorithm 1) behaviour tests."""

import pytest

from repro.core import GenConfig, XDataGenerator
from repro.datasets import schema_with_fks, university_sample_database
from repro.engine.executor import execute_query
from repro.engine.integrity import find_violations
from repro.sql.parser import parse_query

Q2 = (
    "SELECT * FROM instructor i, teaches t, course c "
    "WHERE i.id = t.id AND t.course_id = c.course_id"
)


class TestOriginalDataset:
    def test_original_query_nonempty(self, uni_schema_nofk):
        suite = XDataGenerator(uni_schema_nofk).generate(Q2)
        original = [d for d in suite.datasets if d.group == "original"]
        assert len(original) == 1
        result = execute_query(parse_query(Q2), original[0].db)
        assert len(result) >= 1

    def test_original_with_selection(self, uni_schema_nofk):
        sql = "SELECT * FROM instructor i WHERE i.salary > 90000"
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        original = suite.datasets[0]
        result = execute_query(parse_query(sql), original.db)
        assert len(result) >= 1


class TestDatasetLegality:
    @pytest.mark.parametrize(
        "fks", [[], ["teaches.id"], ["teaches.id", "teaches.course_id"]]
    )
    def test_every_dataset_is_legal(self, fks):
        schema = schema_with_fks(fks)
        suite = XDataGenerator(schema).generate(Q2)
        for dataset in suite.datasets:
            assert find_violations(dataset.db) == []

    def test_out_of_query_fk_closed(self):
        """instructor.dept_name FK pulls a department row in (Sec V-B)."""
        schema = schema_with_fks(["instructor.dept_name"])
        sql = "SELECT * FROM instructor i WHERE i.salary > 0"
        suite = XDataGenerator(schema).generate(sql)
        for dataset in suite.datasets:
            assert find_violations(dataset.db) == []
            if len(dataset.db.relation("instructor")):
                assert len(dataset.db.relation("department")) >= 1

    def test_transitive_fk_closure(self):
        """teaches -> course -> department -> classroom chain closes."""
        schema = schema_with_fks(
            ["teaches.course_id", "course.dept_name", "department.building"]
        )
        sql = "SELECT * FROM teaches t WHERE t.year > 2000"
        suite = XDataGenerator(schema).generate(sql)
        for dataset in suite.datasets:
            assert find_violations(dataset.db) == []
            if len(dataset.db.relation("teaches")):
                assert len(dataset.db.relation("classroom")) >= 1


class TestCounts:
    def test_table1_dataset_counts(self):
        """The '#Datasets Generated' column of Table I, all rows."""
        from repro.datasets import UNIVERSITY_QUERIES

        expected = {
            ("Q1", 0): 2, ("Q1", 1): 1,
            ("Q2", 0): 4, ("Q2", 1): 3, ("Q2", 2): 2,
            ("Q3", 0): 6, ("Q3", 1): 5, ("Q3", 4): 3,
            ("Q4", 0): 7, ("Q4", 4): 4,
            ("Q5", 0): 9, ("Q5", 4): 6,
            ("Q6", 0): 11, ("Q6", 6): 6,
        }
        for name in ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]:
            info = UNIVERSITY_QUERIES[name]
            for fks in info["fk_rows"]:
                schema = schema_with_fks(fks)
                suite = XDataGenerator(schema).generate(info["sql"])
                assert (
                    suite.non_original_count() == expected[(name, len(fks))]
                ), f"{name} with {len(fks)} FKs"

    def test_table2_dataset_counts(self):
        from repro.datasets import UNIVERSITY_QUERIES

        expected = {"Q7": 3, "Q8": 1, "Q9": 2, "Q10": 6, "Q11": 9}
        for name, count in expected.items():
            info = UNIVERSITY_QUERIES[name]
            schema = schema_with_fks(info["fk_rows"][0])
            suite = XDataGenerator(schema).generate(info["sql"])
            assert suite.non_original_count() == count, name


class TestSkips:
    def test_fk_makes_group_equivalent(self):
        schema = schema_with_fks(["teaches.id"])
        sql = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
        suite = XDataGenerator(schema).generate(sql)
        assert any(
            s.reason == "structurally-equivalent" for s in suite.skipped
        )

    def test_self_join_nullification_skipped(self, uni_schema_nofk):
        """r1.a = r2.a over the same table: every tuple matches itself."""
        sql = (
            "SELECT * FROM course c1, course c2 "
            "WHERE c1.course_id = c2.course_id"
        )
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        assert suite.non_original_count() == 0
        assert len(suite.skipped) == 2

    def test_count_star_skipped(self, uni_schema_nofk):
        sql = "SELECT COUNT(*) FROM instructor"
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        assert any(s.group == "aggregate" for s in suite.skipped)


class TestConfig:
    def test_comparisons_can_be_disabled(self, uni_schema_nofk):
        sql = "SELECT * FROM instructor i WHERE i.salary > 100"
        config = GenConfig(include_comparisons=False)
        suite = XDataGenerator(uni_schema_nofk, config).generate(sql)
        assert suite.count("comparison") == 0

    def test_aggregates_can_be_disabled(self, uni_schema_nofk):
        sql = "SELECT SUM(i.salary) FROM instructor i"
        config = GenConfig(include_aggregates=False)
        suite = XDataGenerator(uni_schema_nofk, config).generate(sql)
        assert suite.count("aggregate") == 0

    def test_unfold_false_gives_same_datasets(self, uni_schema_nofk):
        fast = XDataGenerator(uni_schema_nofk).generate(Q2)
        slow = XDataGenerator(
            uni_schema_nofk, GenConfig(unfold=False)
        ).generate(Q2)
        assert fast.non_original_count() == slow.non_original_count()

    def test_accepts_parsed_query(self, uni_schema_nofk):
        suite = XDataGenerator(uni_schema_nofk).generate(parse_query(Q2))
        assert suite.datasets

    def test_suite_reporting_helpers(self, uni_schema_nofk):
        suite = XDataGenerator(uni_schema_nofk).generate(Q2)
        assert suite.count() == len(suite.datasets)
        assert suite.count("eqclass") == 4
        text = suite.pretty()
        assert "Test suite" in text


class TestInputDatabase:
    def test_domain_mode_uses_input_values(self, uni_schema_nofk):
        sample = university_sample_database(uni_schema_nofk)
        config = GenConfig(input_db=sample, input_mode="domain")
        suite = XDataGenerator(uni_schema_nofk, config).generate(Q2)
        instructor_ids = {
            row[0] for row in sample.relation("instructor").rows
        }
        for dataset in suite.datasets:
            if not dataset.used_input_db:
                continue
            for row in dataset.db.relation("instructor").rows:
                assert row[0] in instructor_ids

    def test_falls_back_without_input_db(self, uni_schema_nofk):
        """Aggregation needs 3 distinct-ish tuples; a 1-row input database
        cannot supply them, so the generator retries without it."""
        from repro.engine.database import Database

        tiny_input = Database(uni_schema_nofk)
        tiny_input.insert("instructor", (1, "Srinivasan", "CS", 1000))
        config = GenConfig(input_db=tiny_input, input_mode="tuples")
        sql = "SELECT i.dept_name, SUM(i.salary) FROM instructor i GROUP BY i.dept_name"
        suite = XDataGenerator(uni_schema_nofk, config).generate(sql)
        agg = [d for d in suite.datasets if d.group == "aggregate"]
        assert agg and not agg[0].used_input_db
