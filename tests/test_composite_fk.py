"""Generation with composite (multi-column) foreign keys.

The paper's examples use single-column keys, but genDBConstraints and
assembly handle multi-column foreign keys as units; these tests pin that
behaviour with a section/teaches-style schema (the shape the unmodified
Silberschatz schema has).
"""

import pytest

from repro.core import XDataGenerator
from repro.engine.integrity import find_violations
from repro.mutation import enumerate_mutants
from repro.schema.catalog import Column, ForeignKey, Schema, Table
from repro.schema.types import SqlType
from repro.testing import classify_survivors, evaluate_suite


@pytest.fixture
def composite_schema():
    section = Table(
        "section",
        [
            Column("course_id", SqlType.INT),
            Column("sec_id", SqlType.INT),
            Column("room", SqlType.VARCHAR),
        ],
        primary_key=("course_id", "sec_id"),
    )
    assignment = Table(
        "assignment",
        [
            Column("teacher", SqlType.INT),
            Column("course_id", SqlType.INT),
            Column("sec_id", SqlType.INT),
        ],
        primary_key=("teacher",),
        foreign_keys=[
            ForeignKey(
                "assignment",
                ("course_id", "sec_id"),
                "section",
                ("course_id", "sec_id"),
            )
        ],
    )
    return Schema([section, assignment])


SQL = (
    "SELECT * FROM assignment a, section s "
    "WHERE a.course_id = s.course_id AND a.sec_id = s.sec_id"
)


def test_datasets_respect_composite_fk(composite_schema):
    suite = XDataGenerator(composite_schema).generate(SQL)
    assert suite.datasets
    for dataset in suite.datasets:
        assert find_violations(dataset.db) == []


def test_composite_fk_requires_pairwise_match(composite_schema):
    """The FK holds as a unit: partial column matches are not enough."""
    suite = XDataGenerator(composite_schema).generate(SQL)
    for dataset in suite.datasets:
        sections = {
            (row[0], row[1]) for row in dataset.db.relation("section").rows
        }
        for row in dataset.db.relation("assignment").rows:
            assert (row[1], row[2]) in sections


def test_nullification_works_per_column(composite_schema):
    """Nullifying one EC column of the pair still yields legal data: the
    spare section tuple absorbs the dangling half of the key."""
    suite = XDataGenerator(composite_schema).generate(SQL)
    targets = {d.target for d in suite.datasets}
    assert any("nullify s.course_id" in t for t in targets) or any(
        "nullify s.sec_id" in t for t in targets
    ) or len(suite.skipped) >= 1


def test_mutants_killed_or_equivalent(composite_schema):
    suite = XDataGenerator(composite_schema).generate(SQL)
    space = enumerate_mutants(suite.analyzed)
    report = evaluate_suite(space, suite.databases)
    classification = classify_survivors(space, report.survivors, trials=12)
    assert classification.missed == []
