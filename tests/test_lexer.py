"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexError
from repro.sql.lexer import Token, TokenKind, tokenize


def kinds(sql):
    return [t.kind for t in tokenize(sql)[:-1]]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_whitespace_only(self):
        assert tokenize("   \n\t  ")[-1].kind is TokenKind.EOF
        assert len(tokenize("   \n\t  ")) == 1

    def test_keyword_recognised_case_insensitively(self):
        for text in ("select", "SELECT", "Select", "sElEcT"):
            token = tokenize(text)[0]
            assert token.kind is TokenKind.KEYWORD
            assert token.value == "SELECT"

    def test_identifier_preserves_spelling(self):
        token = tokenize("MyTable")[0]
        assert token.kind is TokenKind.IDENT
        assert token.value == "MyTable"

    def test_identifier_with_underscore_and_digits(self):
        token = tokenize("dept_name2")[0]
        assert token.kind is TokenKind.IDENT
        assert token.value == "dept_name2"

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.NUMBER
        assert token.value == "42"

    def test_decimal_literal(self):
        token = tokenize("3.25")[0]
        assert token.value == "3.25"

    def test_qualified_name_is_three_tokens(self):
        assert values("t.id") == ["t", ".", "id"]

    def test_number_then_dot_then_ident(self):
        # "1.e" must not eat the dot as a decimal point.
        assert values("t1.x") == ["t1", ".", "x"]


class TestStrings:
    def test_simple_string(self):
        token = tokenize("'CS'")[0]
        assert token.kind is TokenKind.STRING
        assert token.value == "CS"

    def test_string_with_spaces(self):
        assert tokenize("'hello world'")[0].value == "hello world"

    def test_escaped_quote(self):
        assert tokenize("'O''Brien'")[0].value == "O'Brien"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_unterminated_after_escape_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops''")


class TestOperators:
    @pytest.mark.parametrize("op", ["=", "<", ">", "+", "-", "*", "/", "(", ")", ",", ".", ";"])
    def test_single_char_ops(self, op):
        token = tokenize(op)[0]
        assert token.kind is TokenKind.OP
        assert token.value == op

    @pytest.mark.parametrize("op", ["<=", ">=", "<>"])
    def test_multi_char_ops(self, op):
        assert tokenize(op)[0].value == op

    def test_bang_equals_normalised(self):
        assert tokenize("!=")[0].value == "<>"

    def test_le_not_split(self):
        assert values("a<=b") == ["a", "<=", "b"]

    def test_unknown_character_raises_with_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("a @ b")
        assert excinfo.value.position == 2


class TestComments:
    def test_line_comment_skipped(self):
        assert values("a -- comment\n b") == ["a", "b"]

    def test_comment_at_end_of_input(self):
        assert values("a -- trailing") == ["a"]


class TestPositions:
    def test_positions_recorded(self):
        tokens = tokenize("SELECT x")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_token_matches_helper(self):
        token = Token(TokenKind.KEYWORD, "FROM", 0)
        assert token.matches(TokenKind.KEYWORD)
        assert token.matches(TokenKind.KEYWORD, "FROM")
        assert not token.matches(TokenKind.KEYWORD, "WHERE")
        assert not token.matches(TokenKind.IDENT)


class TestFullStatements:
    def test_simple_query_token_stream(self):
        sql = "SELECT a FROM t WHERE a >= 10"
        assert values(sql) == ["SELECT", "a", "FROM", "t", "WHERE", "a", ">=", "10"]

    def test_aggregate_tokens(self):
        assert values("COUNT(DISTINCT x)") == ["COUNT", "(", "DISTINCT", "x", ")"]

    def test_join_keywords(self):
        sql = "a NATURAL LEFT OUTER JOIN b"
        assert values(sql) == ["a", "NATURAL", "LEFT", "OUTER", "JOIN", "b"]
