"""Integrity checking: PK, FK, NOT NULL."""

import pytest

from repro.engine.database import Database
from repro.engine.integrity import check_integrity, find_violations
from repro.errors import IntegrityError


def test_valid_instance_passes(tiny_db):
    check_integrity(tiny_db)  # no raise


def test_pk_duplicate_detected(tiny_schema):
    db = Database(tiny_schema)
    db.insert_rows("r", [(1, 10), (1, 99)])
    violations = find_violations(db)
    assert any("primary key" in v for v in violations)


def test_pk_null_detected(tiny_schema):
    db = Database(tiny_schema)
    db.insert("r", (None, 10))
    assert any("primary key" in v for v in find_violations(db))


def test_fk_dangling_detected(tiny_schema):
    db = Database(tiny_schema)
    db.insert("r", (1, 10))
    db.insert("s", (7, 99))  # r_a = 99 has no r
    violations = find_violations(db)
    assert any("foreign key" in v for v in violations)


def test_not_null_on_fk_column(tiny_schema):
    # Assumption A2 made s.r_a NOT NULL at schema build time.
    db = Database(tiny_schema)
    db.insert("r", (1, 10))
    db.insert("s", (7, None))
    assert any("NOT NULL" in v for v in find_violations(db))


def test_check_integrity_raises_with_all_violations(tiny_schema):
    db = Database(tiny_schema)
    db.insert_rows("r", [(1, 10), (1, 11)])
    db.insert("s", (7, 99))
    with pytest.raises(IntegrityError) as excinfo:
        check_integrity(db)
    assert len(excinfo.value.violations) == 2


def test_empty_database_is_legal(tiny_schema):
    check_integrity(Database(tiny_schema))


def test_nullable_fk_null_is_legal():
    """Section V-H: a NULL FK value satisfies the constraint."""
    from repro.schema.catalog import Column, ForeignKey, Schema, Table
    from repro.schema.types import SqlType

    schema = Schema(
        [
            Table("r", [Column("a", SqlType.INT)], primary_key=("a",)),
            Table(
                "s",
                [Column("r_a", SqlType.INT)],
                foreign_keys=[ForeignKey("s", ("r_a",), "r", ("a",))],
            ),
        ],
        allow_nullable_fks=True,
    )
    db = Database(schema)
    db.insert("s", (None,))
    check_integrity(db)  # no raise


def test_multi_column_fk_checked_as_unit():
    from repro.schema.catalog import Column, ForeignKey, Schema, Table
    from repro.schema.types import SqlType

    schema = Schema(
        [
            Table(
                "r",
                [Column("x", SqlType.INT), Column("y", SqlType.INT)],
                primary_key=("x", "y"),
            ),
            Table(
                "s",
                [Column("p", SqlType.INT), Column("q", SqlType.INT)],
                foreign_keys=[ForeignKey("s", ("p", "q"), "r", ("x", "y"))],
            ),
        ]
    )
    db = Database(schema)
    db.insert("r", (1, 2))
    db.insert("s", (1, 2))
    check_integrity(db)
    db.insert("s", (1, 3))  # components exist separately but not as a pair
    assert find_violations(db)


def test_database_copy_is_independent(tiny_db):
    clone = tiny_db.copy()
    clone.insert("r", (99, 0))
    assert len(tiny_db.relation("r")) == 3
    assert len(clone.relation("r")) == 4


def test_total_rows_and_pretty(tiny_db):
    assert tiny_db.total_rows() == 6
    rendered = tiny_db.pretty()
    assert "r(a, b)" in rendered
    assert "(1, 10)" in rendered
