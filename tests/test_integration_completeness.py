"""End-to-end completeness: generate, mutate, kill, classify.

Theorem 1's claim: the suite kills every *non-equivalent* mutant in the
join-type + selection mutation space.  The automated form of the paper's
manual verification: every surviving mutant must be indistinguishable
from the original on randomized legal instances.
"""

import pytest

from repro.core import XDataGenerator
from repro.datasets import UNIVERSITY_QUERIES, schema_with_fks
from repro.mutation import enumerate_mutants
from repro.testing import classify_survivors, evaluate_suite


def run_battery(sql, fks, trials=10, include_full=False):
    schema = schema_with_fks(fks)
    suite = XDataGenerator(schema).generate(sql)
    space = enumerate_mutants(suite.analyzed, include_full_outer=include_full)
    report = evaluate_suite(space, suite.databases, stop_at_first_kill=True)
    classification = classify_survivors(
        space, report.survivors, trials=trials
    )
    return suite, report, classification


def battery_cases():
    for name, info in UNIVERSITY_QUERIES.items():
        for fks in info["fk_rows"]:
            yield pytest.param(info["sql"], fks, id=f"{name}-fk{len(fks)}")


@pytest.mark.parametrize("sql,fks", battery_cases())
def test_no_non_equivalent_mutant_survives(sql, fks):
    _, report, classification = run_battery(sql, fks)
    assert classification.missed == [], [
        str(c.mutant) for c in classification.missed
    ]


@pytest.mark.parametrize("sql,fks", battery_cases())
def test_every_dataset_is_a_legal_instance(sql, fks):
    schema = schema_with_fks(fks)
    suite = XDataGenerator(schema).generate(sql)
    for dataset in suite.datasets:
        dataset.db.validate()


def test_full_outer_mutants_also_killed():
    """The two per-node datasets kill the full-outer mutant too (Sec V-A)."""
    sql = UNIVERSITY_QUERIES["Q2"]["sql"]
    _, report, classification = run_battery(sql, [], include_full=True)
    assert classification.missed == []


def test_mixed_outer_join_query():
    """Section VI-C.1's outer-join experiment, automated."""
    sql = (
        "SELECT i.id, t.course_id, t.year FROM instructor i "
        "LEFT OUTER JOIN teaches t ON i.id = t.id"
    )
    _, report, classification = run_battery(sql, [])
    assert classification.missed == []


def test_right_outer_join_query():
    sql = (
        "SELECT i.id, t.course_id FROM teaches t "
        "RIGHT OUTER JOIN instructor i ON i.id = t.id"
    )
    _, report, classification = run_battery(sql, [])
    assert classification.missed == []


def test_full_outer_join_query_with_visible_sides():
    """Assumption A7: both inputs project a column."""
    sql = (
        "SELECT i.id, t.id FROM instructor i "
        "FULL OUTER JOIN teaches t ON i.id = t.id"
    )
    _, report, classification = run_battery(sql, [])
    assert classification.missed == []


def test_non_equi_join_killed():
    """Algorithm 3's genNotExists on an expression join condition."""
    sql = (
        "SELECT s.id, i.id FROM student s, instructor i "
        "WHERE s.tot_cred = i.salary + 10"
    )
    _, report, classification = run_battery(sql, [])
    assert report.killed >= 1
    assert classification.missed == []


def test_self_join_with_alias():
    """Repeated relation occurrences share the CVC3-style tuple array."""
    sql = (
        "SELECT p1.course_id, p2.prereq_id FROM prereq p1, prereq p2 "
        "WHERE p1.prereq_id = p2.course_id"
    )
    _, report, classification = run_battery(sql, [])
    assert classification.missed == []


def test_example1_from_paper():
    """Example 1: the kill dataset must include a matching course tuple."""
    sql = (
        "SELECT * FROM instructor i, teaches t, course c "
        "WHERE i.id = t.id AND t.course_id = c.course_id"
    )
    schema = schema_with_fks([])
    suite = XDataGenerator(schema).generate(sql)
    dataset = next(d for d in suite.datasets if "nullify i.id" in d.target)
    teaches = dataset.db.relation("teaches").rows[0]
    course_ids = {row[0] for row in dataset.db.relation("course").rows}
    assert teaches[1] in course_ids  # difference propagates to the root


def test_example3_equivalent_mutation_survives_but_is_equivalent():
    """Example 3: i left-outer t under a join with course is equivalent."""
    sql = (
        "SELECT * FROM instructor i, teaches t, course c "
        "WHERE i.id = t.id AND t.course_id = c.course_id"
    )
    _, report, classification = run_battery(sql, [])
    lefts = [
        m
        for m in report.survivors
        if "LEFT" in m.description and "[i]" in m.description
    ]
    assert lefts, "the Example 3 mutant should survive"
    assert classification.missed == []


def test_aggregation_with_constrained_unique_group():
    from repro.schema.catalog import Column, Schema, Table
    from repro.schema.types import SqlType

    schema = Schema(
        [
            Table(
                "sales",
                [
                    Column("region", SqlType.VARCHAR, domain=("n", "s")),
                    Column("amount", SqlType.INT),
                ],
            )
        ]
    )
    suite = XDataGenerator(schema).generate(
        "SELECT s.region, AVG(s.amount) FROM sales s GROUP BY s.region"
    )
    space = enumerate_mutants(suite.analyzed)
    report = evaluate_suite(space, suite.databases)
    assert report.killed == report.total  # all 7 aggregate mutants die
