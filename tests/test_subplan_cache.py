"""Subplan-cache tests (DESIGN.md §5g).

Three contracts back the batched kill check:

* fingerprints are *stable* — structurally equal trees built from
  distinct objects digest identically — and *sensitive* — any
  single-field mutation changes the digest;
* cached entries never leak across datasets;
* kill verdicts are byte-identical with the cache on and off.
"""

from __future__ import annotations

import pytest

from repro.core import XDataGenerator
from repro.engine.database import Database
from repro.engine.executor import execute_plan
from repro.engine.plan import (
    AggregateNode,
    JoinNode,
    ProjectNode,
    ScanNode,
    SelectNode,
    compile_query,
    plan_fingerprint,
)
from repro.engine.subplan import SubplanCache
from repro.mutation import enumerate_mutants
from repro.sql.ast import (
    ColumnRef,
    Comparison,
    JoinKind,
    Literal,
    SelectItem,
)
from repro.sql.parser import parse_query
from repro.testing.killcheck import KillCheckConfig, evaluate_suite
from tests.workload import KILLCHECK_CORPUS


def star(binding: str = "r") -> tuple[SelectItem, ...]:
    return (SelectItem(ColumnRef(binding, "a")),)


def join_plan(kind: JoinKind = JoinKind.INNER,
              op: str = "=",
              rhs: int = 1) -> JoinNode:
    """A small join tree built from scratch each call (fresh objects)."""
    return JoinNode(
        kind,
        ScanNode("r", "r"),
        SelectNode(
            ScanNode("s", "s"),
            (Comparison(op, ColumnRef("s", "a"), Literal(rhs)),),
        ),
        (Comparison("=", ColumnRef("r", "a"), ColumnRef("s", "r_a")),),
    )


class TestFingerprintStability:
    def test_equal_trees_fingerprint_equal(self):
        # Distinct objects, same structure: the digest is content-based.
        a, b = join_plan(), join_plan()
        assert a is not b
        assert plan_fingerprint(a) == plan_fingerprint(b)

    def test_compiled_query_matches_recompiled(self):
        sql = (
            "SELECT i.name FROM instructor i JOIN teaches t "
            "ON i.id = t.id WHERE t.year > 2009"
        )
        one = compile_query(parse_query(sql))
        two = compile_query(parse_query(sql))
        assert plan_fingerprint(one) == plan_fingerprint(two)

    def test_fingerprint_memoized_on_instance(self):
        plan = join_plan()
        digest = plan_fingerprint(plan)
        assert plan.__dict__["_structural_fingerprint"] == digest
        assert plan_fingerprint(plan) == digest

    @pytest.mark.parametrize(
        "mutated",
        [
            join_plan(kind=JoinKind.LEFT),
            join_plan(kind=JoinKind.FULL),
            join_plan(op="<"),
            join_plan(op="<="),
            join_plan(rhs=2),
        ],
        ids=["left-join", "full-join", "lt-op", "le-op", "literal"],
    )
    def test_single_field_mutation_changes_fingerprint(self, mutated):
        assert plan_fingerprint(join_plan()) != plan_fingerprint(mutated)

    def test_scan_fields_distinguish(self):
        assert plan_fingerprint(ScanNode("r", "r")) != plan_fingerprint(
            ScanNode("s", "r")
        )
        assert plan_fingerprint(ScanNode("r", "r")) != plan_fingerprint(
            ScanNode("r", "x")
        )

    def test_project_distinct_flag_distinguishes(self):
        child = ScanNode("r", "r")
        plain = ProjectNode(child, star(), distinct=False)
        distinct = ProjectNode(child, star(), distinct=True)
        assert plan_fingerprint(plain) != plan_fingerprint(distinct)

    def test_aggregate_having_distinguishes(self):
        child = ScanNode("r", "r")
        group = (ColumnRef("r", "a"),)
        bare = AggregateNode(child, group, star())
        having = AggregateNode(
            child, group, star(),
            (Comparison(">", ColumnRef("r", "a"), Literal(0)),),
        )
        assert plan_fingerprint(bare) != plan_fingerprint(having)

    def test_mutation_space_fingerprints_are_unique(self, uni_schema_nofk):
        """Every enumerated mutant digests differently from the original
        and from every sibling (they differ pairwise in some field)."""
        sql = (
            "SELECT * FROM instructor i JOIN teaches t ON i.id = t.id "
            "WHERE t.year > 2009"
        )
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        space = enumerate_mutants(suite.analyzed)
        digests = [plan_fingerprint(m.plan) for m in space.mutants]
        digests.append(plan_fingerprint(space.original_plan))
        assert len(set(digests)) == len(digests)


class TestDatasetIsolation:
    def two_dbs(self, tiny_schema):
        one = Database(tiny_schema)
        one.insert_rows("r", [(1, 10)])
        one.insert_rows("s", [(7, 1)])
        one.validate()
        two = Database(tiny_schema)
        two.insert_rows("r", [(2, 20)])
        two.insert_rows("s", [(8, 2)])
        two.validate()
        return one, two

    def test_cache_hits_never_cross_datasets(self, tiny_schema):
        """The same plan on two datasets must return each dataset's own
        rows even when one shared cache serves both."""
        sql = "SELECT r.a, s.a FROM r, s WHERE r.a = s.r_a"
        plan = compile_query(parse_query(sql))
        one, two = self.two_dbs(tiny_schema)
        cache = SubplanCache()
        first = execute_plan(plan, one, cache)
        second = execute_plan(plan, two, cache)
        assert first.rows == [(1, 7)]
        assert second.rows == [(2, 8)]

    def test_repeat_on_same_dataset_hits(self, tiny_schema, tiny_db):
        plan = compile_query(
            parse_query("SELECT r.a FROM r, s WHERE r.a = s.r_a")
        )
        cache = SubplanCache()
        first = execute_plan(plan, tiny_db, cache)
        hits_before = cache.hits
        second = execute_plan(plan, tiny_db, cache)
        assert second is first  # shared result object, one top-level hit
        assert cache.hits > hits_before

    def test_drop_dataset_releases_entries(self, tiny_schema):
        plan = compile_query(parse_query("SELECT r.a FROM r"))
        one, two = self.two_dbs(tiny_schema)
        cache = SubplanCache()
        execute_plan(plan, one, cache)
        execute_plan(plan, two, cache)
        assert len(cache._by_dataset) == 2
        cache.drop_dataset(one)
        assert len(cache._by_dataset) == 1
        # A re-run of the dropped dataset recomputes and still gets the
        # right rows (the one-slot fast path was invalidated too).
        assert execute_plan(plan, one, cache).rows == [(1,)]

    def test_counters_move(self, tiny_db):
        plan = compile_query(parse_query("SELECT r.a FROM r"))
        cache = SubplanCache()
        execute_plan(plan, tiny_db, cache)
        assert cache.misses > 0
        assert cache.bytes_stored > 0
        execute_plan(plan, tiny_db, cache)
        assert cache.hits > 0
        stats = cache.stats()
        assert stats["hits"] == cache.hits
        assert 0.0 <= stats["hit_rate"] <= 1.0


class TestCachedUncachedEquivalence:
    @pytest.mark.parametrize(
        "sql", KILLCHECK_CORPUS, ids=range(len(KILLCHECK_CORPUS))
    )
    def test_kill_matrix_identical(self, uni_schema_nofk, uni_db, sql):
        """The §5g acceptance bar: cached and uncached evaluation agree
        on every (mutant, dataset) verdict, not just aggregate counts."""
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        space = enumerate_mutants(suite.analyzed)
        databases = suite.databases + [uni_db]
        cached = evaluate_suite(space, databases, config=KillCheckConfig())
        uncached = evaluate_suite(
            space, databases, config=KillCheckConfig.uncached()
        )
        assert [o.killed_by for o in cached.outcomes] == [
            o.killed_by for o in uncached.outcomes
        ]
        assert cached.cache_stats is not None
        assert cached.cache_stats["hits"] > 0
        assert uncached.cache_stats is None
