"""IS [NOT] NULL predicates — lifting assumption A6."""

import pytest

from repro.core import XDataGenerator, analyze_query
from repro.datasets import schema_with_fks
from repro.engine.executor import execute_query
from repro.errors import UnsupportedSqlError
from repro.mutation import enumerate_mutants
from repro.sql.ast import NullTest
from repro.sql.parser import parse_query
from repro.sql.printer import to_sql
from repro.testing import classify_survivors, evaluate_suite

NULL_SQL = "SELECT s.id, s.name FROM student s WHERE s.tot_cred IS NULL"
NOT_NULL_SQL = "SELECT s.id FROM student s WHERE s.tot_cred IS NOT NULL"


class TestParsing:
    def test_is_null_parses(self):
        query = parse_query(NULL_SQL)
        pred = query.where[0]
        assert isinstance(pred, NullTest)
        assert not pred.negated

    def test_is_not_null_parses(self):
        assert parse_query(NOT_NULL_SQL).where[0].negated

    def test_round_trip(self):
        for sql in (NULL_SQL, NOT_NULL_SQL):
            query = parse_query(sql)
            assert parse_query(to_sql(query)) == query

    def test_is_null_on_expression_rejected(self):
        with pytest.raises(UnsupportedSqlError):
            parse_query("SELECT * FROM t WHERE a + 1 IS NULL")


class TestEngine:
    def test_null_rows_selected(self, uni_schema_nofk):
        from repro.engine.database import Database

        db = Database(uni_schema_nofk)
        db.insert("student", (1, "Zhang", "CS", None))
        db.insert("student", (2, "Shankar", "CS", 32))
        result = execute_query(parse_query(NULL_SQL), db)
        assert result.rows == [(1, "Zhang")]
        result = execute_query(parse_query(NOT_NULL_SQL), db)
        assert result.rows == [(2,)]


class TestValidation:
    def test_not_null_column_rejected_for_positive_test(self, uni_schema):
        # instructor.dept_name is an FK column -> NOT NULL under A2.
        with pytest.raises(UnsupportedSqlError):
            analyze_query(
                parse_query(
                    "SELECT * FROM instructor i WHERE i.dept_name IS NULL"
                ),
                uni_schema,
            )

    def test_outer_join_combination_rejected(self, uni_schema_nofk):
        with pytest.raises(UnsupportedSqlError):
            analyze_query(
                parse_query(
                    "SELECT i.id FROM instructor i LEFT OUTER JOIN teaches t "
                    "ON i.id = t.id WHERE t.year IS NULL"
                ),
                uni_schema_nofk,
            )

    def test_column_in_other_predicate_rejected(self, uni_schema_nofk):
        with pytest.raises(UnsupportedSqlError):
            analyze_query(
                parse_query(
                    "SELECT s.id FROM student s "
                    "WHERE s.tot_cred IS NULL AND s.tot_cred > 5"
                ),
                uni_schema_nofk,
            )


class TestGenerationAndKilling:
    def test_flip_mutant_in_space(self, uni_schema_nofk):
        space = enumerate_mutants(NULL_SQL, uni_schema_nofk)
        null_mutants = space.by_kind("nulltest")
        assert len(null_mutants) == 1
        assert "IS NOT NULL" in null_mutants[0].description

    def test_original_dataset_has_null_value(self, uni_schema_nofk):
        suite = XDataGenerator(uni_schema_nofk).generate(NULL_SQL)
        original = suite.datasets[0]
        rows = original.db.relation("student").rows
        assert any(row[3] is None for row in rows)
        assert len(execute_query(parse_query(NULL_SQL), original.db)) >= 1

    def test_violation_dataset_has_value(self, uni_schema_nofk):
        suite = XDataGenerator(uni_schema_nofk).generate(NULL_SQL)
        violation = next(d for d in suite.datasets if d.group == "nulltest")
        rows = violation.db.relation("student").rows
        assert all(row[3] is not None for row in rows)

    @pytest.mark.parametrize(
        "sql",
        [
            NULL_SQL,
            NOT_NULL_SQL,
            "SELECT s.name, k.grade FROM student s, takes k "
            "WHERE s.id = k.id AND k.grade IS NULL",
            "SELECT s.id FROM student s "
            "WHERE s.tot_cred IS NOT NULL AND s.name <> 'Wu'",
        ],
    )
    def test_all_mutants_killed_or_equivalent(self, sql, uni_schema_nofk):
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        space = enumerate_mutants(suite.analyzed)
        report = evaluate_suite(space, suite.databases)
        classification = classify_survivors(space, report.survivors, trials=12)
        assert classification.missed == []
        null_outcomes = [
            o for o in report.outcomes if o.mutant.kind == "nulltest"
        ]
        assert null_outcomes and all(o.killed for o in null_outcomes)

    def test_datasets_remain_legal(self, uni_schema_nofk):
        suite = XDataGenerator(uni_schema_nofk).generate(NULL_SQL)
        for dataset in suite.datasets:
            dataset.db.validate()
