"""Tests for the crash-safe differential fuzzing campaign.

Covers the campaign subsystem bottom-up: query evolution, corpus
admission/round-trip, bug fingerprinting and dedup, atomic checkpoints,
the three oracles (including seeded-defect detection through lying
backends), driver determinism, crash/hang recovery, graceful drain —
and the pinned acceptance property: SIGKILL mid-campaign followed by
``--resume`` converges to a state identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.backends import BackendDisagreement, EngineBackend
from repro.campaign import (
    BugRecord,
    BugTracker,
    CampaignConfig,
    CampaignDriver,
    CampaignState,
    Corpus,
    DuplicateSensitivityOracle,
    JoinIdentityOracle,
    OracleContext,
    bug_fingerprint,
    load_checkpoint,
    query_features,
    run_case,
    save_checkpoint,
)
from repro.campaign.case import CaseTask
from repro.campaign.oracles import duplicate_sensitivity_transforms
from repro.core.generator import XDataGenerator
from repro.datasets.university import university_schema
from repro.engine.plan import JoinNode, ProjectNode
from repro.engine.relation import Relation
from repro.mutation import evolve_query, evolution_operators
from repro.mutation.space import enumerate_mutants
from repro.obs.journal import validate_journal
from repro.sql.ast import JoinKind
from repro.testing.killcheck import result_signature

_SCHEMA = university_schema()

_JOIN_SQL = (
    "SELECT * FROM instructor i JOIN teaches t ON i.id = t.id "
    "WHERE i.salary > 70000 AND t.year > 2007"
)


def _space_and_dbs(sql):
    suite = XDataGenerator(_SCHEMA).generate(sql)
    return enumerate_mutants(suite.analyzed, include_full_outer=True), list(
        suite.databases
    )


# ---------------------------------------------------------------------------
# evolution
# ---------------------------------------------------------------------------


class TestEvolution:
    def test_deterministic_for_same_rng_state(self):
        out1 = evolve_query(random.Random(5), _JOIN_SQL)
        out2 = evolve_query(random.Random(5), _JOIN_SQL)
        assert out1 == out2

    def test_produces_parseable_different_query(self):
        evolved = evolve_query(random.Random(1), _JOIN_SQL)
        assert evolved is not None
        sql, applied = evolved
        assert applied and set(applied) <= set(evolution_operators())
        # Re-printing through the canonical printer must re-parse.
        assert evolve_query(random.Random(2), sql) is not None

    def test_unevolvable_query_returns_none(self):
        assert evolve_query(random.Random(0), "SELECT * FROM course c") is None

    def test_unparseable_returns_none(self):
        assert evolve_query(random.Random(0), "SELEKT nonsense") is None


# ---------------------------------------------------------------------------
# corpus
# ---------------------------------------------------------------------------


class TestCorpus:
    def test_features_capture_structure(self):
        features = query_features(_JOIN_SQL)
        assert "join:inner" in features
        assert any(f.startswith("tables:") for f in features)

    def test_novelty_admission(self):
        corpus = Corpus()
        assert corpus.admit(_JOIN_SQL, origin=0)
        # An evolved child with no new feature is rejected...
        rejected = (
            "SELECT * FROM instructor i JOIN teaches t ON i.id = t.id "
            "WHERE i.salary > 60000 AND t.year > 2006"
        )
        assert not corpus.admit(rejected, origin=0, generation=1)
        # ...but a new join kind is novel.
        novel = (
            "SELECT * FROM instructor i LEFT OUTER JOIN teaches t "
            "ON i.id = t.id WHERE i.salary > 70000"
        )
        assert corpus.admit(novel, origin=0, generation=1)

    def test_seed_members_bypass_novelty(self):
        corpus = Corpus()
        assert corpus.admit("SELECT * FROM course c", origin=0, generation=0)
        assert corpus.admit(
            "SELECT * FROM course c WHERE c.credits > 3", origin=1,
            generation=0,
        )

    def test_state_round_trip(self):
        corpus = Corpus(max_size=7)
        corpus.admit(_JOIN_SQL, origin=0)
        corpus.items[0].trials = 4
        restored = Corpus.from_state(corpus.state())
        assert restored.state() == corpus.state()
        assert restored.items[0].features == corpus.items[0].features

    def test_bounded_size_evicts_most_trialled(self):
        corpus = Corpus(max_size=2)
        corpus.admit("SELECT * FROM course c", 0)
        corpus.admit("SELECT * FROM instructor i", 1)
        corpus.items[0].trials = 9
        corpus.admit("SELECT * FROM student s", 2)
        assert len(corpus) == 2
        assert all(item.trials < 9 for item in corpus.items)


# ---------------------------------------------------------------------------
# bugs
# ---------------------------------------------------------------------------


class TestBugTracker:
    def _bug(self, fingerprint="f1"):
        return BugRecord(
            fingerprint=fingerprint,
            oracle="join-identity",
            context="case 3: identity violation",
            sql=_JOIN_SQL,
            seed_case=3,
            minimized_dataset={"instructor": [[1, "a", "CS", None]]},
            results={},
        )

    def test_fingerprint_is_stable_and_content_sensitive(self):
        rows = {"t": [[1, None], [2, "x"]]}
        a = bug_fingerprint("cross-check", "plan1", rows)
        assert a == bug_fingerprint("cross-check", "plan1", rows)
        assert a != bug_fingerprint("cross-check", "plan2", rows)
        assert a != bug_fingerprint("join-identity", "plan1", rows)
        assert a != bug_fingerprint(
            "cross-check", "plan1", {"t": [[1, None]]}
        )

    def test_dedup_counts_hits(self):
        tracker = BugTracker()
        assert tracker.record(self._bug())
        assert not tracker.record(self._bug())
        assert tracker.bugs["f1"].hits == 2
        assert len(tracker) == 1

    def test_flush_load_round_trip(self, tmp_path):
        path = str(tmp_path / "bugs.jsonl")
        tracker = BugTracker(path=path)
        tracker.record(self._bug("a"))
        tracker.record(self._bug("b"))
        tracker.flush()
        restored = BugTracker.load(path)
        assert restored.fingerprints == {"a", "b"}
        assert restored.bugs["a"].sql == _JOIN_SQL

    def test_flush_is_rewrite_not_append(self, tmp_path):
        path = str(tmp_path / "bugs.jsonl")
        tracker = BugTracker(path=path)
        tracker.record(self._bug("a"))
        tracker.flush()
        tracker.flush()  # a replayed round re-flushes the same store
        lines = [
            line
            for line in open(path, encoding="utf-8").read().splitlines()
            if line.strip()
        ]
        assert len(lines) == 1

    def test_failed_flush_keeps_previous_file(self, tmp_path, monkeypatch):
        path = str(tmp_path / "bugs.jsonl")
        tracker = BugTracker(path=path)
        tracker.record(self._bug("a"))
        tracker.flush()
        before = open(path, encoding="utf-8").read()
        tracker.record(self._bug("b"))

        import repro.campaign.bugs as bugs_mod

        def boom(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(bugs_mod.os, "replace", boom)
        with pytest.raises(OSError):
            tracker.flush()
        assert open(path, encoding="utf-8").read() == before
        assert not [
            name for name in os.listdir(tmp_path) if ".tmp." in name
        ]


# ---------------------------------------------------------------------------
# checkpoint
# ---------------------------------------------------------------------------


class TestCheckpoint:
    def test_round_trip_including_rng(self, tmp_path):
        state = CampaignState(seed=3)
        rng = random.Random(3)
        rng.random()
        state.capture_rng(rng)
        state.next_case = 12
        state.round = 3
        state.corpus.admit(_JOIN_SQL, 0)
        state.seen_bugs.add("deadbeef")
        state.stats["cases"] = 12
        path = str(tmp_path / "checkpoint.json")
        save_checkpoint(path, state)
        restored = load_checkpoint(path)
        assert restored.next_case == 12
        assert restored.seen_bugs == {"deadbeef"}
        assert restored.corpus.state() == state.corpus.state()
        # The restored RNG continues the exact stream.
        assert restored.make_rng().random() == rng.random()

    def test_failed_save_leaves_previous_checkpoint(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "checkpoint.json")
        save_checkpoint(path, CampaignState(seed=1))
        before = open(path, encoding="utf-8").read()

        import repro.campaign.checkpoint as cp_mod

        monkeypatch.setattr(
            cp_mod.os, "replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("crash")),
        )
        with pytest.raises(OSError):
            save_checkpoint(path, CampaignState(seed=2))
        assert open(path, encoding="utf-8").read() == before


# ---------------------------------------------------------------------------
# oracles
# ---------------------------------------------------------------------------


class _LyingBackend:
    """Wraps the engine and corrupts results for selected plans."""

    name = "lying-engine"

    def __init__(self, corrupt):
        self._inner = EngineBackend()
        self._corrupt = corrupt

    def load(self, db):
        return self._inner.load(db)

    def execute(self, handle, plan):
        relation = self._inner.execute(handle, plan)
        return self._corrupt(plan, relation)

    def close(self, handle):
        self._inner.close(handle)


class TestOracles:
    def test_transforms_preserve_results_on_engine(self):
        space, dbs = _space_and_dbs(_JOIN_SQL)
        backend = EngineBackend()
        transforms = list(
            duplicate_sensitivity_transforms(space.original_plan)
        )
        assert transforms, "join + 2 conjuncts must admit transforms"
        for db in dbs:
            handle = backend.load(db)
            base = result_signature(
                backend.execute(handle, space.original_plan)
            )
            for label, plan in transforms:
                assert (
                    result_signature(backend.execute(handle, plan)) == base
                ), f"transform {label} changed the result bag"
            backend.close(handle)

    def test_duplicate_sensitivity_catches_seeded_defect(self):
        space, dbs = _space_and_dbs(_JOIN_SQL)

        def corrupt(plan, relation):
            # Misevaluate exactly the stacked-filter shape the
            # filter-idempotence transform produces: drop a row.
            from repro.engine.plan import SelectNode

            if (
                isinstance(plan, ProjectNode)
                and isinstance(plan.child, SelectNode)
                and isinstance(plan.child.child, SelectNode)
                and relation.rows
            ):
                return Relation(
                    list(relation.columns), list(relation.rows[:-1])
                )
            return relation

        ctx = OracleContext(
            space=space, databases=dbs, primary=_LyingBackend(corrupt)
        )
        with pytest.raises(BackendDisagreement) as info:
            DuplicateSensitivityOracle().check(ctx)
        assert info.value.oracle == "duplicate-sensitivity"
        minimized = DuplicateSensitivityOracle().minimize(info.value, ctx)
        assert minimized.total_rows() <= info.value.dataset.total_rows()

    def test_duplicate_sensitivity_passes_on_honest_engine(self):
        space, dbs = _space_and_dbs(_JOIN_SQL)
        ctx = OracleContext(
            space=space, databases=dbs, primary=EngineBackend()
        )
        outcome = DuplicateSensitivityOracle().check(ctx)
        assert outcome.checks > 0 and outcome.skipped is None

    def test_join_identity_catches_lost_dangling_rows(self):
        space, dbs = _space_and_dbs(_JOIN_SQL)

        def corrupt(plan, relation):
            # A FULL join that silently drops one row: the classic
            # incomplete-result logic bug.
            if (
                isinstance(plan, ProjectNode)
                and isinstance(plan.child, JoinNode)
                and plan.child.kind is JoinKind.FULL
                and relation.rows
            ):
                return Relation(
                    list(relation.columns), list(relation.rows[:-1])
                )
            return relation

        ctx = OracleContext(
            space=space, databases=dbs, primary=_LyingBackend(corrupt)
        )
        with pytest.raises(BackendDisagreement) as info:
            JoinIdentityOracle().check(ctx)
        assert info.value.oracle == "join-identity"

    def test_join_identity_passes_on_honest_engine(self):
        space, dbs = _space_and_dbs(_JOIN_SQL)
        ctx = OracleContext(
            space=space, databases=dbs, primary=EngineBackend()
        )
        outcome = JoinIdentityOracle().check(ctx)
        assert outcome.checks > 0 and outcome.skipped is None

    def test_join_identity_skips_joinless_plans(self):
        space, dbs = _space_and_dbs(
            "SELECT * FROM course c WHERE c.credits > 2"
        )
        ctx = OracleContext(
            space=space, databases=dbs, primary=EngineBackend()
        )
        assert JoinIdentityOracle().check(ctx).skipped == "no join nodes"


# ---------------------------------------------------------------------------
# cases
# ---------------------------------------------------------------------------


class TestRunCase:
    def test_healthy_case_checks_all_oracles(self):
        result = run_case(
            CaseTask(
                index=0,
                sql=_JOIN_SQL,
                oracles=("cross-check", "duplicate-sensitivity",
                         "join-identity"),
            )
        )
        assert result.skipped is None and result.bug is None
        assert result.executions > 0
        assert [run.oracle for run in result.oracle_runs] == [
            "cross-check", "duplicate-sensitivity", "join-identity",
        ]

    def test_unsupported_query_is_a_skip_not_an_error(self):
        result = run_case(
            CaseTask(index=0, sql="SELECT * FROM nosuch n", oracles=())
        )
        assert result.skipped is not None

    def test_dataset_drop_variants_stay_valid(self):
        result = run_case(
            CaseTask(
                index=0,
                sql=_JOIN_SQL,
                oracles=("join-identity",),
                dataset_drop=0.9,
                drop_seed=5,
            )
        )
        assert result.skipped is None and result.bug is None


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def _config(tmp_path, **overrides) -> CampaignConfig:
    defaults = dict(
        dir=str(tmp_path / "campaign"),
        seed=11,
        cases=8,
        round_size=4,
        workers=2,
        case_deadline=60.0,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def _checkpoint_sans_clock(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    data.pop("ts")
    return data


class TestDriver:
    def test_campaign_completes_and_journal_validates(self, tmp_path):
        config = _config(tmp_path)
        report = CampaignDriver(config).run()
        assert report["completed"] and not report["interrupted"]
        assert report["stats"]["cases"] == 8
        assert report["cases_per_s"] is None or report["cases_per_s"] > 0
        events = validate_journal(config.path("journal.jsonl"))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_end"
        assert "campaign_checkpoint" in kinds
        report_on_disk = json.load(open(config.path("report.json")))
        assert report_on_disk["stats"] == report["stats"]

    def test_same_seed_is_bit_deterministic(self, tmp_path):
        a = _config(tmp_path, dir=str(tmp_path / "a"))
        b = _config(tmp_path, dir=str(tmp_path / "b"))
        CampaignDriver(a).run()
        CampaignDriver(b).run()
        assert _checkpoint_sans_clock(
            a.path("checkpoint.json")
        ) == _checkpoint_sans_clock(b.path("checkpoint.json"))

    def test_resume_continues_the_same_stream(self, tmp_path):
        full = _config(tmp_path, dir=str(tmp_path / "full"), cases=12)
        CampaignDriver(full).run()
        split = _config(tmp_path, dir=str(tmp_path / "split"), cases=8)
        CampaignDriver(split).run()
        grown = _config(tmp_path, dir=str(tmp_path / "split"), cases=12)
        CampaignDriver(grown, resume=True).run()
        assert _checkpoint_sans_clock(
            full.path("checkpoint.json")
        ) == _checkpoint_sans_clock(grown.path("checkpoint.json"))

    def test_resume_refuses_mismatched_seed(self, tmp_path):
        config = _config(tmp_path)
        CampaignDriver(config).run()
        other = _config(tmp_path, seed=99)
        with pytest.raises(ValueError, match="seed"):
            CampaignDriver(other, resume=True).run()

    def test_worker_crash_is_requeued_and_survived(
        self, tmp_path, monkeypatch
    ):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        monkeypatch.setenv("XDATA_CAMPAIGN_FAULTS", "2:crash")
        monkeypatch.setenv("XDATA_CAMPAIGN_FAULT_DIR", str(marker_dir))
        config = _config(tmp_path)
        report = CampaignDriver(config).run()
        assert report["completed"]
        assert report["stats"]["cases"] == 8
        assert report["stats"]["requeued"] >= 1
        assert (marker_dir / "case2.crash").exists()

    def test_hung_worker_is_killed_and_requeued(self, tmp_path, monkeypatch):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        monkeypatch.setenv("XDATA_CAMPAIGN_FAULTS", "1:hang:60")
        monkeypatch.setenv("XDATA_CAMPAIGN_FAULT_DIR", str(marker_dir))
        config = _config(tmp_path, case_deadline=1.5)
        report = CampaignDriver(config).run()
        assert report["completed"]
        assert report["stats"]["cases"] == 8
        assert report["stats"]["requeued"] >= 1
        assert (
            report["metrics"]["counters"][
                "xdata_campaign_watchdog_kills_total"
            ]
            >= 1
        )

    def test_new_bugs_are_deduplicated_across_rounds(self, tmp_path):
        # Synthetic results exercise the apply path without needing a
        # real engine defect: two cases hit the same fingerprint.
        from repro.campaign.case import CaseBug, CaseResult
        from repro.campaign.driver import _RoundOutcome
        from repro.obs import JournalWriter

        config = _config(tmp_path)
        os.makedirs(config.dir)
        driver = CampaignDriver(config)
        state = CampaignState(seed=11)
        tracker = BugTracker(path=config.path("bugs.jsonl"))
        journal = JournalWriter(config.path("journal.jsonl"))
        journal.campaign_start(seed=11, cases=8, resumed=False)

        def result(index):
            r = CaseResult(index, _JOIN_SQL)
            r.bug = CaseBug(
                fingerprint="same-bug",
                oracle="join-identity",
                context=f"case {index}",
                sql=_JOIN_SQL,
                minimized_dataset={},
                results={},
            )
            return r

        outcome = _RoundOutcome(results=[result(0), result(1)])
        new = driver._apply_results(state, tracker, journal, outcome)
        assert new == 1
        assert state.stats["bugs"] == 1
        assert state.stats["rediscoveries"] == 1
        assert tracker.bugs["same-bug"].hits == 2
        tracker.flush()
        assert len(BugTracker.load(config.path("bugs.jsonl"))) == 1
        journal.campaign_end(cases=2, bugs=1, ok=True)
        journal.close()
        validate_journal(config.path("journal.jsonl"))


# ---------------------------------------------------------------------------
# the pinned acceptance property: SIGKILL + --resume == uninterrupted
# ---------------------------------------------------------------------------


def _cli_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    env.pop("XDATA_CAMPAIGN_FAULTS", None)
    env.pop("XDATA_CAMPAIGN_FAULT_DIR", None)
    return env


_CLI = [
    sys.executable, "-m", "repro.cli", "campaign",
    "--seed", "11", "--round-size", "4", "--workers", "2",
]


class TestKillResume:
    def test_sigkill_then_resume_matches_uninterrupted_run(self, tmp_path):
        env = _cli_env()
        reference = str(tmp_path / "reference")
        subprocess.run(
            _CLI + ["--dir", reference, "--cases", "24"],
            env=env, check=True, capture_output=True, timeout=300,
        )
        killed = str(tmp_path / "killed")
        proc = subprocess.Popen(
            _CLI + ["--dir", killed, "--cases", "24"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        checkpoint = os.path.join(killed, "checkpoint.json")
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                try:
                    if json.load(open(checkpoint))["next_case"] >= 8:
                        break
                except (OSError, json.JSONDecodeError, KeyError):
                    pass  # not checkpointed yet / mid-replace
                time.sleep(0.01)
            else:
                pytest.fail("campaign never reached the kill point")
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=60)
        killed_at = json.load(open(checkpoint))["next_case"]
        assert 8 <= killed_at < 24, "SIGKILL landed mid-campaign"
        done = subprocess.run(
            _CLI + ["--dir", killed, "--cases", "24", "--resume"],
            env=env, check=True, capture_output=True, timeout=300,
            text=True,
        )
        assert "complete" in done.stdout
        # Corpus, RNG position, stats, seen bugs: all bit-identical to
        # the run that was never interrupted.
        assert _checkpoint_sans_clock(
            os.path.join(reference, "checkpoint.json")
        ) == _checkpoint_sans_clock(checkpoint)
        # No duplicate bug reports.
        lines = [
            json.loads(line)
            for line in open(os.path.join(killed, "bugs.jsonl"))
            if line.strip()
        ]
        fingerprints = [record["fingerprint"] for record in lines]
        assert len(fingerprints) == len(set(fingerprints))
        # The journal validates even with the torn campaign inside it
        # (resume's campaign_start implicitly closes the killed one).
        events = validate_journal(os.path.join(killed, "journal.jsonl"))
        starts = [e for e in events if e["event"] == "campaign_start"]
        assert len(starts) == 2 and starts[1]["resumed"] is True

    def test_sigterm_drains_gracefully(self, tmp_path):
        env = _cli_env()
        directory = str(tmp_path / "drained")
        proc = subprocess.Popen(
            _CLI + ["--dir", directory, "--cases", "2000"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        checkpoint = os.path.join(directory, "checkpoint.json")
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if os.path.exists(checkpoint):
                    break
                time.sleep(0.01)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 0, out
        assert "interrupted (resumable)" in out
        events = validate_journal(os.path.join(directory, "journal.jsonl"))
        end = [e for e in events if e["event"] == "campaign_end"]
        assert len(end) == 1 and end[0]["ok"] is False
        # The drain checkpoint is resumable.
        state = load_checkpoint(checkpoint)
        assert state.next_case >= 4
