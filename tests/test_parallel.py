"""Parallel generation determinism: a pooled run must equal a sequential one.

The parallel layer re-derives specs in worker processes and merges
results in spec order, so ``workers=4`` must produce byte-identical
suites to ``workers=1`` — including the UNSAT/skipped groups and the
relaxation-ladder datasets, which exercise the retry paths inside
``_run_spec``.  Tests that need real worker processes bypass the
CPU-count cap (``cap_to_cpus=False``) so the pool protocol is exercised
even on single-core machines.
"""

from __future__ import annotations

import pytest

from repro.core.generator import GenConfig, XDataGenerator
from repro.core.parallel import (
    effective_workers,
    generate_jobs_parallel,
    generate_suites_parallel,
    shutdown_pool,
)
from repro.datasets import UNIVERSITY_QUERIES
from repro.schema.catalog import Column, Schema, Table
from repro.schema.types import SqlType
from tests.workload import schema_teaches_fk, suite_fingerprint, uni_query

_fingerprint = suite_fingerprint


def _pk_group_schema():
    """GROUP BY over the whole PK: forces the S1/S2 relaxation ladder."""
    return Schema(
        [
            Table(
                "t",
                [Column("g", SqlType.INT), Column("a", SqlType.INT)],
                primary_key=("g",),
            )
        ]
    )


@pytest.fixture(scope="module", autouse=True)
def _stop_pool_afterwards():
    yield
    shutdown_pool()


class TestEffectiveWorkers:
    def test_never_more_than_tasks(self):
        assert effective_workers(8, 3, cap_to_cpus=False) == 3

    def test_at_least_one(self):
        assert effective_workers(0, 0) == 1

    def test_cap_bypass(self):
        assert effective_workers(4, 10, cap_to_cpus=False) == 4


class TestSpecFanoutDeterminism:
    """GenConfig(workers=4) through the public generate() entry point."""

    @pytest.mark.parametrize("name", ["Q2", "Q5", "Q7"])
    def test_suites_identical(self, name):
        schema, sql = uni_query(name)
        sequential = XDataGenerator(schema, GenConfig(workers=1)).generate(
            sql
        )
        parallel = XDataGenerator(schema, GenConfig(workers=4)).generate(
            sql
        )
        assert _fingerprint(sequential) == _fingerprint(parallel)

    def test_skipped_groups_covered(self):
        """The comparison must include UNSAT/skipped groups, not just SAT."""
        schema, sql = uni_query("Q5")
        suite = XDataGenerator(schema, GenConfig(workers=4)).generate(sql)
        assert suite.skipped, "expected Q5 to produce skipped groups"

    def test_relaxation_path_identical(self):
        schema = _pk_group_schema()
        sql = "SELECT t.g, SUM(t.a) FROM t GROUP BY t.g"
        sequential = XDataGenerator(schema, GenConfig(workers=1)).generate(sql)
        parallel = XDataGenerator(schema, GenConfig(workers=4)).generate(sql)
        assert _fingerprint(sequential) == _fingerprint(parallel)
        assert any(d.relaxation for d in parallel.datasets), (
            "expected the relaxation ladder to fire"
        )


class TestPooledBatchDeterminism:
    """generate_jobs_parallel with real worker processes (cap bypassed)."""

    def test_university_workload_identical(self, table12_jobs):
        jobs = table12_jobs
        config = GenConfig()
        sequential = [
            XDataGenerator(schema, config).generate(sql)
            for schema, sql in jobs
        ]
        pooled = generate_jobs_parallel(jobs, config, 4, cap_to_cpus=False)

        assert len(pooled) == len(sequential)
        for seq_suite, par_suite in zip(sequential, pooled):
            assert _fingerprint(seq_suite) == _fingerprint(par_suite)
        assert any(s.skipped for s in pooled)

    def test_per_query_pool_identical(self):
        queries = {
            name: UNIVERSITY_QUERIES[name]["sql"] for name in ("Q1", "Q8")
        }
        schema = schema_teaches_fk()
        config = GenConfig()
        pooled = generate_suites_parallel(
            schema, queries, config, 4, cap_to_cpus=False
        )
        assert list(pooled) == list(queries)
        for name, sql in queries.items():
            sequential = XDataGenerator(schema, config).generate(sql)
            assert _fingerprint(sequential) == _fingerprint(pooled[name])


class TestWorkloadEntryPoint:
    def test_generate_workload_workers_identical(self):
        from repro.testing.workload import generate_workload

        schema = schema_teaches_fk()
        queries = {
            "q7": UNIVERSITY_QUERIES["Q7"]["sql"],
            "q8": UNIVERSITY_QUERIES["Q8"]["sql"],
        }
        sequential = generate_workload(schema, queries, workers=1)
        parallel = generate_workload(schema, queries, workers=4)
        assert [
            _fingerprint(e.suite) for e in sequential.entries
        ] == [_fingerprint(e.suite) for e in parallel.entries]
        assert [
            d.db.pretty(only_nonempty=False) for d in sequential.datasets
        ] == [d.db.pretty(only_nonempty=False) for d in parallel.datasets]
