"""The shared Table I/II university workload, in one place.

The paper's evaluation workload — every Table I/II university query at
every Table I foreign-key variant — used to be rebuilt by hand in
``test_parallel.py``, ``test_killcheck.py``, ``test_subplan_cache.py``
and ``benchmarks/bench_parallel.py``, each with its own copy of the
schema-cache loop.  This module is the single source: tests import the
builders (or use the ``table12_jobs`` fixture from ``conftest.py``) so
the workload definition cannot drift between the differential suites
that all claim to cover "the full workload".
"""

from __future__ import annotations

from repro.datasets import UNIVERSITY_QUERIES, schema_with_fks

#: The instructor-teaches equijoin every kill-check suite exercises
#: (CORPUS[0] of the subplan-cache tests, the classification tests'
#: survivor query, Table II's Q1 shape).
INSTRUCTOR_TEACHES_JOIN = (
    "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
)

#: Kill-check corpus: one query per §5g-relevant plan shape (plain
#: join, outer join + filter, three-way join, aggregate + HAVING).
KILLCHECK_CORPUS = [
    INSTRUCTOR_TEACHES_JOIN,
    (
        "SELECT i.name FROM instructor i LEFT OUTER JOIN teaches t "
        "ON i.id = t.id WHERE i.salary > 70000"
    ),
    (
        "SELECT * FROM instructor i JOIN teaches t ON i.id = t.id "
        "JOIN course c ON t.course_id = c.course_id"
    ),
    (
        "SELECT t.course_id, COUNT(*), AVG(i.salary) FROM instructor i, "
        "teaches t WHERE i.id = t.id GROUP BY t.course_id "
        "HAVING COUNT(*) > 1"
    ),
]


def suite_fingerprint(suite):
    """Everything observable about a suite, in order, byte for byte."""
    return (
        suite.sql,
        [
            (
                d.group,
                d.target,
                d.purpose,
                d.relaxation,
                d.used_input_db,
                d.db.pretty(only_nonempty=False),
            )
            for d in suite.datasets
        ],
        [(s.group, s.target, s.reason) for s in suite.skipped],
    )


def schema_teaches_fk():
    """The university schema keeping only the teaches.id -> instructor
    foreign key (the Table I variant the classification and workload
    entry-point tests pin)."""
    return schema_with_fks(["teaches.id"])


def uni_query(name: str):
    """(schema, sql) for one Table II query at its last (most
    constrained) Table I foreign-key variant."""
    info = UNIVERSITY_QUERIES[name]
    return schema_with_fks(info["fk_rows"][-1]), info["sql"]


def table12_jobs():
    """The full workload: one (schema, sql) job per Table II query per
    Table I foreign-key variant, schemas shared across jobs with the
    same variant.  Returns (jobs, distinct schema count)."""
    schema_cache: dict[tuple, object] = {}
    jobs = []
    for name, info in UNIVERSITY_QUERIES.items():
        for fk_rows in info["fk_rows"]:
            key = tuple(fk_rows)
            if key not in schema_cache:
                schema_cache[key] = schema_with_fks(fk_rows)
            jobs.append((schema_cache[key], info["sql"]))
    return jobs, len(schema_cache)
