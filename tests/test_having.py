"""Constrained aggregation (HAVING) — the paper's named future work."""

import pytest

from repro.core import XDataGenerator, analyze_query
from repro.datasets import schema_with_fks
from repro.engine.executor import execute_query
from repro.errors import UnsupportedSqlError
from repro.mutation import enumerate_mutants
from repro.sql.parser import parse_query
from repro.testing import classify_survivors, evaluate_suite

SUM_SQL = (
    "SELECT i.dept_name, SUM(i.salary) FROM instructor i "
    "GROUP BY i.dept_name HAVING SUM(i.salary) > 50"
)
COUNT_SQL = (
    "SELECT i.dept_name, COUNT(i.id) FROM instructor i "
    "GROUP BY i.dept_name HAVING COUNT(i.id) >= 2"
)


def analyze(sql, schema):
    return analyze_query(parse_query(sql), schema)


class TestParsingAndEngine:
    def test_having_parses_and_prints(self):
        from repro.sql.printer import to_sql

        query = parse_query(SUM_SQL)
        assert len(query.having) == 1
        assert parse_query(to_sql(query)) == query

    def test_engine_filters_groups(self, uni_db):
        result = execute_query(parse_query(
            "SELECT i.dept_name, COUNT(i.id) FROM instructor i "
            "GROUP BY i.dept_name HAVING COUNT(i.id) >= 2"
        ), uni_db)
        assert sorted(result.rows) == [("CS", 2)]

    def test_engine_having_without_group_by(self, uni_db):
        result = execute_query(parse_query(
            "SELECT COUNT(i.id) FROM instructor i HAVING COUNT(i.id) > 100"
        ), uni_db)
        assert result.rows == []

    def test_having_with_aggregate_on_left_or_right(self, uni_db):
        left = execute_query(parse_query(
            "SELECT i.dept_name FROM instructor i GROUP BY i.dept_name "
            "HAVING COUNT(i.id) >= 2"
        ), uni_db)
        right = execute_query(parse_query(
            "SELECT i.dept_name FROM instructor i GROUP BY i.dept_name "
            "HAVING 2 <= COUNT(i.id)"
        ), uni_db)
        assert sorted(left.rows) == sorted(right.rows)


class TestAnalysis:
    def test_having_info_normalised(self, uni_schema_nofk):
        aq = analyze(
            "SELECT i.dept_name FROM instructor i GROUP BY i.dept_name "
            "HAVING 2 <= COUNT(i.id)",
            uni_schema_nofk,
        )
        info = aq.having[0]
        assert info.agg.func == "COUNT"
        assert info.op == ">="
        assert info.constant == 2

    def test_non_constant_having_rejected(self, uni_schema_nofk):
        with pytest.raises(UnsupportedSqlError):
            analyze(
                "SELECT i.dept_name FROM instructor i GROUP BY i.dept_name "
                "HAVING SUM(i.salary) > AVG(i.salary)",
                uni_schema_nofk,
            )

    def test_string_aggregate_in_having_rejected(self, uni_schema_nofk):
        with pytest.raises(UnsupportedSqlError):
            analyze(
                "SELECT i.dept_name FROM instructor i GROUP BY i.dept_name "
                "HAVING MIN(i.name) = 3",
                uni_schema_nofk,
            )


class TestGeneration:
    def test_three_datasets_per_conjunct(self, uni_schema_nofk):
        suite = XDataGenerator(uni_schema_nofk).generate(SUM_SQL)
        having = [d for d in suite.datasets if d.group == "having"]
        assert len(having) == 3

    def test_original_dataset_passes_having(self, uni_schema_nofk):
        suite = XDataGenerator(uni_schema_nofk).generate(SUM_SQL)
        original = suite.datasets[0]
        result = execute_query(parse_query(SUM_SQL), original.db)
        assert len(result) >= 1

    def test_count_having_grows_tuple_sets(self, uni_schema_nofk):
        suite = XDataGenerator(uni_schema_nofk).generate(COUNT_SQL)
        original = suite.datasets[0]
        result = execute_query(parse_query(COUNT_SQL), original.db)
        assert len(result) >= 1
        assert len(original.db.relation("instructor")) >= 2

    def test_forced_cases_have_expected_sums(self, uni_schema_nofk):
        suite = XDataGenerator(uni_schema_nofk).generate(SUM_SQL)
        for dataset in suite.datasets:
            if dataset.group != "having":
                continue
            total = sum(
                row[3] for row in dataset.db.relation("instructor").rows
            )
            if "force =" in dataset.target:
                assert total == 50
            elif "force <" in dataset.target:
                assert total < 50
            else:
                assert total > 50

    def test_infeasible_count_case_skipped(self, uni_schema_nofk):
        """COUNT(...) < 1 can never hold with a visible group."""
        sql = (
            "SELECT i.dept_name, COUNT(i.id) FROM instructor i "
            "GROUP BY i.dept_name HAVING COUNT(i.id) = 1"
        )
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        skipped = [s for s in suite.skipped if s.group == "having"]
        assert any("force <" in s.target for s in skipped)


class TestKilling:
    @pytest.mark.parametrize("sql", [SUM_SQL, COUNT_SQL])
    def test_no_missed_mutants(self, sql, uni_schema_nofk):
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        space = enumerate_mutants(suite.analyzed)
        report = evaluate_suite(space, suite.databases)
        classification = classify_survivors(space, report.survivors, trials=12)
        assert classification.missed == [], [
            str(c.mutant) for c in classification.missed
        ]

    def test_having_comparison_mutants_killed(self, uni_schema_nofk):
        suite = XDataGenerator(uni_schema_nofk).generate(SUM_SQL)
        space = enumerate_mutants(suite.analyzed)
        report = evaluate_suite(space, suite.databases)
        having_outcomes = [
            o for o in report.outcomes if "having[" in o.mutant.description
        ]
        assert having_outcomes
        assert all(o.killed for o in having_outcomes)

    def test_having_aggregate_mutants_mostly_killed(self, uni_schema_nofk):
        suite = XDataGenerator(uni_schema_nofk).generate(SUM_SQL)
        space = enumerate_mutants(suite.analyzed)
        having_aggs = [
            m for m in space.mutants if "having:" in m.description
        ]
        assert len(having_aggs) == 7
        report = evaluate_suite(space, suite.databases)
        killed = [
            o for o in report.outcomes
            if o.mutant in having_aggs and o.killed
        ]
        assert len(killed) >= 5  # the rest must be verified equivalent

    def test_join_query_with_having(self):
        schema = schema_with_fks(["teaches.id"])
        sql = (
            "SELECT i.dept_name, SUM(i.salary) FROM instructor i, teaches t "
            "WHERE i.id = t.id GROUP BY i.dept_name "
            "HAVING SUM(i.salary) > 50"
        )
        suite = XDataGenerator(schema).generate(sql)
        space = enumerate_mutants(suite.analyzed)
        report = evaluate_suite(space, suite.databases)
        classification = classify_survivors(space, report.survivors, trials=12)
        assert classification.missed == []
        assert report.killed >= report.total * 2 // 3
