"""Frame header resolution (the engine's column-scoping rules)."""

import pytest

from repro.engine.frame import Frame, FrameCol
from repro.errors import ExecutionError


def make_frame():
    return Frame(
        [
            FrameCol("r", "a", (("r", "a"),)),
            FrameCol("r", "b", (("r", "b"),)),
            FrameCol("s", "a", (("s", "a"),)),
        ]
    )


class TestResolve:
    def test_qualified(self):
        frame = make_frame()
        assert frame.resolve("r", "a") == 0
        assert frame.resolve("s", "a") == 2

    def test_case_insensitive(self):
        frame = make_frame()
        assert frame.resolve("R", "A") == 0

    def test_unqualified_unique(self):
        assert make_frame().resolve(None, "b") == 1

    def test_unqualified_ambiguous(self):
        with pytest.raises(ExecutionError):
            make_frame().resolve(None, "a")

    def test_missing_column(self):
        with pytest.raises(ExecutionError):
            make_frame().resolve("r", "zz")
        with pytest.raises(ExecutionError):
            make_frame().resolve(None, "zz")


class TestCoalesced:
    def coalesced_frame(self):
        return Frame(
            [
                FrameCol(None, "a", (("r", "a"), ("s", "a"))),
                FrameCol("r", "b", (("r", "b"),)),
            ]
        )

    def test_qualified_resolves_through_sources(self):
        frame = self.coalesced_frame()
        assert frame.resolve("r", "a") == 0
        assert frame.resolve("s", "a") == 0

    def test_unqualified_prefers_coalesced(self):
        frame = self.coalesced_frame()
        assert frame.resolve(None, "a") == 0

    def test_bindings_include_sources(self):
        assert self.coalesced_frame().bindings() == {"r", "s"}

    def test_columns_of_binding_includes_coalesced(self):
        frame = self.coalesced_frame()
        assert frame.columns_of_binding("s") == [0]
        assert frame.columns_of_binding("r") == [0, 1]


def test_answers_helper():
    col = FrameCol("r", "a", (("r", "a"),))
    assert col.answers("r", "a")
    assert not col.answers("s", "a")
    merged = FrameCol(None, "a", (("r", "a"), ("s", "a")))
    assert merged.answers("r", "a") and merged.answers("s", "a")
