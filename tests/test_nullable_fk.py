"""Section V-H extension: NULL foreign keys as a nullification alternative."""

import pytest

from repro.core import XDataGenerator
from repro.datasets import university_schema
from repro.datasets.university import schema_with_fks
from repro.engine.integrity import find_violations
from repro.mutation import enumerate_mutants
from repro.testing import classify_survivors, evaluate_suite

SQL = "SELECT * FROM instructor i, advisor a WHERE i.id = a.i_id"


def _nullable_schema():
    base = university_schema(allow_nullable_fks=True)
    return schema_with_fks(["advisor.i_id"], base=base)


def test_null_fk_dataset_generated():
    suite = XDataGenerator(_nullable_schema()).generate(SQL)
    null_sets = [d for d in suite.datasets if "null-fk" in d.target]
    assert len(null_sets) == 1
    rows = null_sets[0].db.relation("advisor").rows
    assert any(row[1] is None for row in rows)


def test_null_fk_dataset_is_legal():
    suite = XDataGenerator(_nullable_schema()).generate(SQL)
    for dataset in suite.datasets:
        assert find_violations(dataset.db) == []


def test_null_fk_kills_the_otherwise_equivalent_mutant():
    suite = XDataGenerator(_nullable_schema()).generate(SQL)
    space = enumerate_mutants(suite.analyzed)
    report = evaluate_suite(space, suite.databases)
    assert report.killed == report.total == 2
    classification = classify_survivors(space, report.survivors)
    assert classification.missed == []


def test_strict_fk_schema_skips_the_group():
    schema = schema_with_fks(["advisor.i_id"])  # A2: FK forced NOT NULL
    suite = XDataGenerator(schema).generate(SQL)
    assert not any("null-fk" in d.target for d in suite.datasets)
    assert any(s.reason == "structurally-equivalent" for s in suite.skipped)
    space = enumerate_mutants(suite.analyzed)
    report = evaluate_suite(space, suite.databases)
    assert report.killed == 1  # the i-preserving outer mutant is equivalent


def test_pk_column_never_forced_null():
    """teaches.id is part of teaches' primary key: NULL is not an option."""
    base = university_schema(allow_nullable_fks=True)
    schema = schema_with_fks(["teaches.id"], base=base)
    sql = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
    suite = XDataGenerator(schema).generate(sql)
    assert not any("null-fk" in d.target for d in suite.datasets)


def test_selection_on_fk_column_blocks_null_strategy():
    """A predicate over the FK column would evaluate UNKNOWN on NULL."""
    base = university_schema(allow_nullable_fks=True)
    schema = schema_with_fks(["advisor.i_id"], base=base)
    sql = (
        "SELECT * FROM instructor i, advisor a "
        "WHERE i.id = a.i_id AND a.i_id > 0"
    )
    suite = XDataGenerator(schema).generate(sql)
    assert not any("null-fk" in d.target for d in suite.datasets)
