"""Dataset export/import: INSERT scripts and CSV round-trips."""

import pytest

from repro.engine.database import Database
from repro.engine.export import (
    _sql_literal,
    from_csv_map,
    to_csv_map,
    to_insert_script,
    topological_table_order,
)
from repro.errors import EngineError


def test_topological_order_referenced_first(uni_schema):
    order = topological_table_order(uni_schema)
    assert order.index("department") < order.index("instructor")
    assert order.index("instructor") < order.index("teaches")
    assert order.index("classroom") < order.index("department")


def test_insert_script_order_and_content(tiny_db):
    script = to_insert_script(tiny_db)
    lines = script.splitlines()
    assert lines[0].startswith("INSERT INTO r")
    assert "INSERT INTO s (a, r_a) VALUES (7, 1);" in script
    r_positions = [i for i, l in enumerate(lines) if l.startswith("INSERT INTO r")]
    s_positions = [i for i, l in enumerate(lines) if l.startswith("INSERT INTO s")]
    assert max(r_positions) < min(s_positions)


def test_insert_script_escapes_strings(uni_db):
    db = Database(uni_db.schema)
    db.insert("department", ("O'Hara", "Taylor", 1))
    script = to_insert_script(db)
    assert "'O''Hara'" in script


def test_insert_script_null(uni_schema):
    db = Database(uni_schema)
    db.insert("classroom", ("Taylor", None, None))
    script = to_insert_script(db)
    assert "NULL" in script


def test_empty_tables_skipped_by_default(tiny_schema):
    db = Database(tiny_schema)
    assert to_insert_script(db) == ""
    assert to_insert_script(db, include_empty=True) == ""
    assert to_csv_map(db) == {}


def test_csv_round_trip(tiny_db):
    csv_map = to_csv_map(tiny_db)
    rebuilt = from_csv_map(tiny_db.schema, csv_map)
    for table in tiny_db.table_names:
        assert rebuilt.relation(table).rows == tiny_db.relation(table).rows


def test_csv_round_trip_with_nulls_and_strings(uni_schema):
    db = Database(uni_schema)
    db.insert("classroom", ("Taylor", 101, None))
    db.insert("department", ("CS", "Taylor", 100))
    rebuilt = from_csv_map(uni_schema, to_csv_map(db))
    assert rebuilt.relation("classroom").rows == [("Taylor", 101, None)]
    assert rebuilt.relation("department").rows == [("CS", "Taylor", 100)]


def test_csv_empty_string_vs_null(uni_schema):
    db = Database(uni_schema)
    db.insert("classroom", ("", 1, None))
    rebuilt = from_csv_map(uni_schema, to_csv_map(db))
    assert rebuilt.relation("classroom").rows == [("", 1, None)]


def test_csv_unknown_table_rejected(tiny_schema):
    with pytest.raises(EngineError):
        from_csv_map(tiny_schema, {"nope": "a\n1\n"})


def test_csv_header_mismatch_rejected(tiny_schema):
    with pytest.raises(EngineError):
        from_csv_map(tiny_schema, {"r": "a,zz\n1,2\n"})


def test_generated_suite_exports_loadable_scripts(uni_schema_nofk):
    """Every generated dataset renders to a FK-safe INSERT script."""
    from repro.core import XDataGenerator

    suite = XDataGenerator(uni_schema_nofk).generate(
        "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
    )
    for dataset in suite.datasets:
        script = to_insert_script(dataset.db)
        assert script.count("INSERT INTO") == dataset.db.total_rows()


# ---------------------------------------------------------------------------
# SQL literal rendering and the sqlite3 round-trip (DESIGN.md §5f).


class TestSqlLiteral:
    def test_booleans_render_as_integers(self):
        assert _sql_literal(True) == "1"
        assert _sql_literal(False) == "0"

    def test_floats_round_trip_through_repr(self):
        assert _sql_literal(1.5e-7) == "1.5e-07"
        assert float(_sql_literal(0.1)) == 0.1
        assert _sql_literal(float("inf")) == "9e999"
        assert _sql_literal(float("-inf")) == "-9e999"
        assert _sql_literal(float("nan")) == "NULL"

    def test_fractions_render_as_floats(self):
        from fractions import Fraction

        assert _sql_literal(Fraction(1, 2)) == "0.5"

    def test_embedded_newlines_spliced_via_char(self):
        literal = _sql_literal("a\nb")
        assert literal == "('a' || char(10) || 'b')"
        assert "\n" not in literal
        assert _sql_literal("a\rb") == "('a' || char(13) || 'b')"
        assert _sql_literal("\n") == "char(10)"

    def test_quotes_and_newlines_combined(self):
        literal = _sql_literal("it's\na 'test'")
        assert "''" in literal and "char(10)" in literal
        assert "\n" not in literal


def _all_types_schema():
    from repro.schema.catalog import Column, Schema, Table
    from repro.schema.types import SqlType

    return Schema(
        [
            Table(
                "t",
                [
                    Column("k", SqlType.INT),
                    Column("i", SqlType.INT),
                    Column("v", SqlType.VARCHAR),
                    Column("n", SqlType.NUMERIC),
                    Column("f", SqlType.FLOAT),
                    Column("d", SqlType.DATE),
                ],
                primary_key=("k",),
            )
        ]
    )


def test_insert_script_sqlite3_round_trip_every_type():
    """Database -> INSERT script -> sqlite3 -> rows, for every SqlType.

    The script must load unmodified into the stdlib sqlite3 module and
    come back value-identical (after engine normalisation) — this is the
    contract the SQLite backend's loader builds on.
    """
    import sqlite3

    from repro.backends import schema_to_sqlite_ddl
    from repro.engine.values import normalize_value

    schema = _all_types_schema()
    db = Database(schema)
    rows = [
        (1, -7, "plain", 100, 0.1, 20240101),
        (2, 0, "it's\na 'multi'\r\nline", -3, 1.5e-7, 19991231),
        (3, None, "", None, None, None),
        (4, 2**40, "O'Hara", 12345, -2.5, 1),
    ]
    db.insert_rows("t", rows)
    db.validate()

    conn = sqlite3.connect(":memory:")
    conn.executescript(schema_to_sqlite_ddl(schema))
    conn.executescript(to_insert_script(db, quote_identifiers=True))
    fetched = conn.execute(
        'SELECT "k", "i", "v", "n", "f", "d" FROM "t" ORDER BY "k"'
    ).fetchall()
    conn.close()

    normalized = [tuple(normalize_value(v) for v in row) for row in rows]
    assert [tuple(normalize_value(v) for v in row) for row in fetched] == (
        normalized
    )


def test_insert_script_one_statement_per_line_despite_newlines():
    schema = _all_types_schema()
    db = Database(schema)
    db.insert("t", (1, None, "line1\nline2", None, None, None))
    db.insert("t", (2, None, "plain", None, None, None))
    script = to_insert_script(db)
    assert len(script.splitlines()) == 2
    assert all(l.endswith(";") for l in script.splitlines())
