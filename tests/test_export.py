"""Dataset export/import: INSERT scripts and CSV round-trips."""

import pytest

from repro.engine.database import Database
from repro.engine.export import (
    from_csv_map,
    to_csv_map,
    to_insert_script,
    topological_table_order,
)
from repro.errors import EngineError


def test_topological_order_referenced_first(uni_schema):
    order = topological_table_order(uni_schema)
    assert order.index("department") < order.index("instructor")
    assert order.index("instructor") < order.index("teaches")
    assert order.index("classroom") < order.index("department")


def test_insert_script_order_and_content(tiny_db):
    script = to_insert_script(tiny_db)
    lines = script.splitlines()
    assert lines[0].startswith("INSERT INTO r")
    assert "INSERT INTO s (a, r_a) VALUES (7, 1);" in script
    r_positions = [i for i, l in enumerate(lines) if l.startswith("INSERT INTO r")]
    s_positions = [i for i, l in enumerate(lines) if l.startswith("INSERT INTO s")]
    assert max(r_positions) < min(s_positions)


def test_insert_script_escapes_strings(uni_db):
    db = Database(uni_db.schema)
    db.insert("department", ("O'Hara", "Taylor", 1))
    script = to_insert_script(db)
    assert "'O''Hara'" in script


def test_insert_script_null(uni_schema):
    db = Database(uni_schema)
    db.insert("classroom", ("Taylor", None, None))
    script = to_insert_script(db)
    assert "NULL" in script


def test_empty_tables_skipped_by_default(tiny_schema):
    db = Database(tiny_schema)
    assert to_insert_script(db) == ""
    assert to_insert_script(db, include_empty=True) == ""
    assert to_csv_map(db) == {}


def test_csv_round_trip(tiny_db):
    csv_map = to_csv_map(tiny_db)
    rebuilt = from_csv_map(tiny_db.schema, csv_map)
    for table in tiny_db.table_names:
        assert rebuilt.relation(table).rows == tiny_db.relation(table).rows


def test_csv_round_trip_with_nulls_and_strings(uni_schema):
    db = Database(uni_schema)
    db.insert("classroom", ("Taylor", 101, None))
    db.insert("department", ("CS", "Taylor", 100))
    rebuilt = from_csv_map(uni_schema, to_csv_map(db))
    assert rebuilt.relation("classroom").rows == [("Taylor", 101, None)]
    assert rebuilt.relation("department").rows == [("CS", "Taylor", 100)]


def test_csv_empty_string_vs_null(uni_schema):
    db = Database(uni_schema)
    db.insert("classroom", ("", 1, None))
    rebuilt = from_csv_map(uni_schema, to_csv_map(db))
    assert rebuilt.relation("classroom").rows == [("", 1, None)]


def test_csv_unknown_table_rejected(tiny_schema):
    with pytest.raises(EngineError):
        from_csv_map(tiny_schema, {"nope": "a\n1\n"})


def test_csv_header_mismatch_rejected(tiny_schema):
    with pytest.raises(EngineError):
        from_csv_map(tiny_schema, {"r": "a,zz\n1,2\n"})


def test_generated_suite_exports_loadable_scripts(uni_schema_nofk):
    """Every generated dataset renders to a FK-safe INSERT script."""
    from repro.core import XDataGenerator

    suite = XDataGenerator(uni_schema_nofk).generate(
        "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
    )
    for dataset in suite.datasets:
        script = to_insert_script(dataset.db)
        assert script.count("INSERT INTO") == dataset.db.total_rows()
