"""Differential parity + property harness for delta solving (DESIGN.md §5j).

The compile-once/delta-solve pipeline is an amortization, never an
approximation: a delta solve against the compiled query skeleton must be
*byte-identical* to compiling the full constraint system from scratch.
This file pins that two ways:

* **differentially** — the full Table I/II workload and a seeded
  conformance-grammar corpus are generated with ``delta_solve`` on and
  off, and the suites (datasets, skips, relaxations) plus the resulting
  kill matrices must match byte for byte.  A 2000-seed sweep rides
  behind ``-m slow``.
* **propositionally** — Hypothesis properties pin the confluence
  arguments the skeleton relies on: unfold-normalization is idempotent,
  the union-find partition is stable under conjunct insertion order,
  and delta-then-solve equals rebuild-then-solve on random constraint
  systems.
"""

from __future__ import annotations

import random

import pytest

from repro.core.generator import GenConfig, XDataGenerator, clear_process_stores
from repro.errors import GenerationError, UnsupportedSqlError
from repro.mutation import enumerate_mutants
from repro.solver import builders
from repro.solver.builders import conjuncts
from repro.solver.search import SearchConfig
from repro.solver.skeleton import compile_skeleton
from repro.solver.solver import Solver, unfold_formula
from repro.testing import sample_conformance_query
from repro.testing.killcheck import evaluate_suite
from tests.workload import suite_fingerprint, uni_query

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


def delta_config(**kw) -> GenConfig:
    return GenConfig(**kw)


def full_config(**kw) -> GenConfig:
    return GenConfig(delta_solve=False, **kw)


def kill_matrix(suite):
    """Every (mutant, dataset) verdict of a suite, in order."""
    space = enumerate_mutants(suite.analyzed)
    report = evaluate_suite(space, suite.databases)
    return [(o.mutant.description, o.killed_by) for o in report.outcomes]


class TestConfigPlumbing:
    def test_gen_config_overlays_solver_flag(self):
        assert GenConfig().solver.delta_solve is True
        assert GenConfig(delta_solve=False).solver.delta_solve is False
        assert (
            GenConfig(
                delta_solve=True, solver=SearchConfig(delta_solve=False)
            ).solver.delta_solve
            is True
        )

    def test_delta_runs_report_skeleton_traffic(self):
        clear_process_stores()
        schema, sql = uni_query("Q1")
        suite = XDataGenerator(schema, delta_config()).generate(sql)
        stats = suite.health.skeleton_cache
        assert stats["hits"] + stats["misses"] > 0
        assert stats["misses"] > 0  # cold store: first shape compiles
        full = XDataGenerator(schema, full_config()).generate(sql)
        assert full.health.skeleton_cache == {}

    def test_skeleton_compile_time_lands_in_preprocess(self):
        clear_process_stores()
        schema, sql = uni_query("Q1")
        suite = XDataGenerator(schema, delta_config()).generate(sql)
        misses = [
            d for d in suite.datasets if d.stats and d.stats.skeleton == "miss"
        ]
        assert misses, "cold store must record at least one skeleton miss"
        for dataset in misses:
            assert dataset.stats.preprocess_time > 0.0
            assert dataset.stats.elapsed >= dataset.stats.preprocess_time


class TestWorkloadParity:
    """Table I/II: every query x FK variant, datasets AND kill matrices."""

    def test_full_workload_byte_identical(self, table12_jobs):
        clear_process_stores()
        for schema, sql in table12_jobs:
            delta = XDataGenerator(schema, delta_config()).generate(sql)
            full = XDataGenerator(schema, full_config()).generate(sql)
            assert suite_fingerprint(delta) == suite_fingerprint(full)

    def test_full_workload_kill_matrices_identical(self, table12_jobs):
        clear_process_stores()
        for schema, sql in table12_jobs:
            delta = XDataGenerator(schema, delta_config()).generate(sql)
            full = XDataGenerator(schema, full_config()).generate(sql)
            assert kill_matrix(delta) == kill_matrix(full)

    def test_warm_store_repeat_run_still_identical(self, table12_jobs):
        """Second visit of the same request hits the process stores;
        the output must not depend on which path produced it."""
        clear_process_stores()
        schema, sql = table12_jobs[0]
        cold = XDataGenerator(schema, delta_config()).generate(sql)
        warm = XDataGenerator(schema, delta_config()).generate(sql)
        assert suite_fingerprint(cold) == suite_fingerprint(warm)
        assert warm.health.skeleton_cache["misses"] == 0

    def test_ablation_flags_still_identical(self, table12_jobs):
        """delta_solve composes with the other ablations: whatever the
        flag mix, outputs equal the same mix with delta off."""
        schema, sql = table12_jobs[0]
        for flags in (
            dict(hot_path_caching=False),
            dict(unfold=False),
            dict(include_join_condition_datasets=True),
        ):
            delta = XDataGenerator(
                schema, delta_config(**flags)
            ).generate(sql)
            full = XDataGenerator(schema, full_config(**flags)).generate(sql)
            assert suite_fingerprint(delta) == suite_fingerprint(full)


def _corpus_parity(seeds, uni_schema) -> tuple[int, int]:
    """Generate each sampled query with delta on/off; return
    (checked, skipped) after asserting byte parity on every case."""
    checked = skipped = 0
    for seed in seeds:
        sql = sample_conformance_query(random.Random(seed), uni_schema)
        try:
            delta = XDataGenerator(uni_schema, delta_config()).generate(sql)
            full = XDataGenerator(uni_schema, full_config()).generate(sql)
        except (GenerationError, UnsupportedSqlError):
            # Documented pipeline restrictions (NULL tests on outer
            # joins, reused columns); the sampler intentionally
            # overshoots the supported class a little.
            skipped += 1
            continue
        assert suite_fingerprint(delta) == suite_fingerprint(full), (
            f"delta/full divergence at seed {seed}: {sql!r}"
        )
        checked += 1
    return checked, skipped


class TestConformanceCorpusParity:
    def test_200_seed_corpus(self, uni_schema):
        clear_process_stores()
        checked, _skipped = _corpus_parity(range(200), uni_schema)
        # The corpus must stay overwhelmingly checked to mean anything
        # (same bar as the cross-backend conformance suite).
        assert checked >= 150

    @pytest.mark.slow
    def test_2000_seed_sweep(self, uni_schema):
        clear_process_stores()
        checked, _skipped = _corpus_parity(range(2000), uni_schema)
        assert checked >= 1500


# -- Hypothesis properties ----------------------------------------------------

NAMES = tuple(f"v{i}" for i in range(5))


def _linear(draw):
    name = draw(st.sampled_from(NAMES))
    coeff = draw(st.sampled_from((1, 1, 1, 2, -1)))
    offset = draw(st.integers(min_value=-10, max_value=10))
    return builders.var(name).scale(coeff) + builders.const(offset)


@st.composite
def atoms(draw):
    op = draw(st.sampled_from(("=", "<>", "<", "<=", ">", ">=")))
    left = _linear(draw)
    if draw(st.booleans()):
        right = _linear(draw)
    else:
        right = builders.const(draw(st.integers(min_value=-20, max_value=20)))
    return builders.compare(op, left, right)


@st.composite
def formulas(draw):
    """Atoms, conjunctions, disjunctions and bounded quantifiers — the
    shapes the generator's constraint systems are built from."""
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return draw(atoms())
    parts = draw(st.lists(atoms(), min_size=1, max_size=3))
    if kind == 1:
        return builders.conj(parts)
    if kind == 2:
        return builders.disj(parts)
    quantifier = draw(st.sampled_from((builders.forall, builders.exists)))
    return quantifier(parts)


@st.composite
def equalities(draw):
    left = builders.var(draw(st.sampled_from(NAMES)))
    if draw(st.booleans()):
        right = builders.var(draw(st.sampled_from(NAMES)))
    else:
        right = builders.const(draw(st.integers(min_value=-5, max_value=5)))
    return builders.eq(left, right)


def _declared_solver(config=None) -> Solver:
    solver = Solver(config or SearchConfig())
    for name in NAMES:
        solver.int_var(name)
    return solver


class TestProperties:
    @given(formula=formulas())
    @settings(max_examples=200, deadline=None)
    def test_unfold_normalization_idempotent(self, formula):
        once = unfold_formula(formula)
        assert unfold_formula(once) == once

    @given(formula=formulas())
    @settings(max_examples=100, deadline=None)
    def test_conjuncts_roundtrip(self, formula):
        parts = conjuncts(formula)
        assert builders.conj(parts) == formula

    @given(
        units=st.lists(equalities(), min_size=1, max_size=8),
        order=st.randoms(use_true_random=False),
    )
    @settings(
        max_examples=200,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_union_find_stable_under_insertion_order(self, units, order):
        """The compiled classes are the transitive closure of the
        derivable equalities — permutation-invariant by confluence.

        The *raw* parent/fixed maps may differ (fixing v0 before
        unioning v0=v1 records ``fixed[v1]`` directly, the other order
        records a parent link), so the invariant is semantic: every
        variable resolves to the same value, and the unfixed variables
        fall into the same partition.
        """

        def closure(skeleton):
            def find(name):
                return skeleton.parent.get(name, name)

            values = {
                name: skeleton.fixed.get(find(name)) for name in NAMES
            }
            classes: dict[str, set[str]] = {}
            for name in NAMES:
                if values[name] is None:
                    classes.setdefault(find(name), set()).add(name)
            return values, frozenset(
                frozenset(members) for members in classes.values()
            )

        solver = _declared_solver()
        config = solver.config
        infos = solver._infos
        base = compile_skeleton(list(units), infos, config)
        shuffled = list(units)
        order.shuffle(shuffled)
        permuted = compile_skeleton(shuffled, infos, config)
        assert base.unsat == permuted.unsat
        if not base.unsat:
            assert closure(base) == closure(permuted)

    @given(
        shared=st.lists(formulas(), min_size=0, max_size=5),
        delta=st.lists(formulas(), min_size=0, max_size=3),
    )
    @settings(
        max_examples=150,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_delta_then_solve_equals_rebuild_then_solve(self, shared, delta):
        """Solving the delta against a compiled skeleton must equal
        asserting delta-then-shared (the generator's layout) and
        compiling from scratch — same satisfiability, same model."""
        skeleton_solver = _declared_solver()
        skeleton = compile_skeleton(
            list(shared), skeleton_solver._infos, skeleton_solver.config
        )
        skeleton_solver.add_all(delta)
        via_delta = skeleton_solver.solve(base=skeleton)

        rebuild_solver = _declared_solver()
        rebuild_solver.add_all(delta)
        rebuild_solver.add_all(shared)
        via_rebuild = rebuild_solver.solve()

        if via_rebuild is None:
            assert via_delta is None
        else:
            assert via_delta is not None
            assert via_delta.assignment == via_rebuild.assignment
