"""Solver search tests: SAT/UNSAT, preprocessing, models, both modes."""

import pytest

from repro.errors import SolverError, UnsatisfiableError
from repro.solver import Solver
from repro.solver import builders as b
from repro.solver.search import SearchConfig, eval_formula


def check_model(solver, model):
    """Every asserted formula must be true under the model."""
    assert model is not None
    for formula in solver.formulas:
        from repro.solver.solver import unfold_formula

        assert eval_formula(unfold_formula(formula), model.assignment) is True


class TestBasicSat:
    def test_empty_problem_sat(self):
        solver = Solver()
        assert solver.solve() is not None

    def test_single_equality(self):
        solver = Solver()
        x = solver.int_var("x")
        solver.add(b.eq(x, b.const(7)))
        model = solver.solve()
        assert model.raw("x") == 7

    def test_chain_of_equalities(self):
        solver = Solver()
        names = [f"v{i}" for i in range(10)]
        for name in names:
            solver.int_var(name)
        for first, second in zip(names, names[1:]):
            solver.add(b.eq(b.var(first), b.var(second)))
        solver.add(b.eq(b.var("v9"), b.const(42)))
        model = solver.solve()
        assert all(model.raw(n) == 42 for n in names)

    def test_offset_arithmetic(self):
        solver = Solver()
        x = solver.int_var("x")
        y = solver.int_var("y")
        solver.add(b.eq(x, y + b.const(10)))
        solver.add(b.eq(y, b.const(5)))
        assert solver.solve().raw("x") == 15

    def test_inequalities(self):
        solver = Solver()
        x = solver.int_var("x")
        solver.add(b.gt(x, b.const(100)))
        solver.add(b.lt(x, b.const(103)))
        model = solver.solve()
        assert model.raw("x") in (101, 102)

    def test_disequality(self):
        solver = Solver()
        x = solver.int_var("x")
        y = solver.int_var("y")
        solver.add(b.ne(x, y))
        model = solver.solve()
        assert model.raw("x") != model.raw("y")

    def test_disjunction(self):
        solver = Solver()
        x = solver.int_var("x")
        solver.add(b.disj([b.eq(x, b.const(5)), b.eq(x, b.const(9))]))
        solver.add(b.ne(x, b.const(5)))
        assert solver.solve().raw("x") == 9

    def test_many_distinct_values_possible(self):
        solver = Solver()
        names = [f"d{i}" for i in range(6)]
        for name in names:
            solver.int_var(name)
        for i, first in enumerate(names):
            for second in names[i + 1:]:
                solver.add(b.ne(b.var(first), b.var(second)))
        model = solver.solve()
        values = [model.raw(n) for n in names]
        assert len(set(values)) == 6

    def test_preferred_value_chosen_when_free(self):
        solver = Solver()
        solver.int_var("x", preferred=(42,))
        assert solver.solve().raw("x") == 42

    def test_model_satisfies_all(self):
        solver = Solver()
        x, y, z = (solver.int_var(n) for n in "xyz")
        solver.add(b.eq(x, y + b.const(3)))
        solver.add(b.le(z, x))
        solver.add(b.ne(z, y))
        check_model(solver, solver.solve())


class TestUnsat:
    def test_contradictory_constants(self):
        solver = Solver()
        x = solver.int_var("x")
        solver.add(b.eq(x, b.const(1)))
        solver.add(b.eq(x, b.const(2)))
        assert solver.solve() is None

    def test_eq_and_ne(self):
        solver = Solver()
        x, y = solver.int_var("x"), solver.int_var("y")
        solver.add(b.eq(x, y))
        solver.add(b.ne(x, y))
        assert solver.solve() is None

    def test_cycle_with_offset(self):
        solver = Solver()
        x, y = solver.int_var("x"), solver.int_var("y")
        solver.add(b.eq(x, y + b.const(1)))
        solver.add(b.eq(y, x + b.const(1)))
        assert solver.solve() is None

    def test_interval_contradiction(self):
        solver = Solver()
        x = solver.int_var("x")
        solver.add(b.lt(x, b.const(5)))
        solver.add(b.gt(x, b.const(5)))
        assert solver.solve() is None

    def test_require_model_raises(self):
        solver = Solver()
        x = solver.int_var("x")
        solver.add(b.ne(x, x))
        with pytest.raises(UnsatisfiableError):
            solver.require_model()

    def test_fk_vs_not_exists_conflict(self):
        """Example 2's equivalent-mutation shape: UNSAT is the answer."""
        solver = Solver()
        fk = solver.int_var("s.b")
        ref = solver.int_var("r.a")
        solver.add(b.exists([b.eq(fk, ref)], "fk"))
        solver.add(b.not_exists([b.eq(ref, fk)], "nullify"))
        assert solver.solve() is None
        assert solver.solve(unfold=False) is None


class TestStrings:
    def test_string_pool_equality(self):
        solver = Solver()
        x = solver.str_var("x", "pool", ("CS", "Bio"))
        y = solver.str_var("y", "pool")
        solver.add(b.eq(x, y))
        model = solver.solve()
        assert model.value("x") == model.value("y")

    def test_string_disequality_uses_pool(self):
        solver = Solver()
        x = solver.str_var("x", "pool", ("CS",))
        solver.add(b.ne(x, b.const(solver.intern("pool", "CS"))))
        model = solver.solve()
        assert model.value("x") != "CS"

    def test_fresh_strings_generated_when_needed(self):
        solver = Solver()
        names = [f"s{i}" for i in range(4)]
        for name in names:
            solver.str_var(name, "dept", ("CS",))
        for i, first in enumerate(names):
            for second in names[i + 1:]:
                solver.add(b.ne(b.var(first), b.var(second)))
        model = solver.solve()
        values = {model.value(n) for n in names}
        assert len(values) == 4

    def test_type_mismatch_merge_raises(self):
        solver = Solver()
        x = solver.int_var("x")
        y = solver.str_var("y", "pool")
        solver.add(b.eq(x, y))
        with pytest.raises(SolverError):
            solver.solve()


class TestQuantifiers:
    def test_forall_all_instances_hold(self):
        solver = Solver()
        vs = [solver.int_var(f"v{i}") for i in range(3)]
        solver.add(b.forall([b.ge(v, b.const(5)) for v in vs]))
        model = solver.solve()
        assert all(model.raw(f"v{i}") >= 5 for i in range(3))

    def test_exists_picks_some_instance(self):
        solver = Solver()
        x = solver.int_var("x")
        y = solver.int_var("y")
        solver.add(b.exists([b.eq(x, y)]))
        model = solver.solve()
        assert model.raw("x") == model.raw("y")

    def test_not_exists_blocks_all(self):
        solver = Solver()
        target = solver.int_var("t")
        slots = [solver.int_var(f"r{i}") for i in range(3)]
        solver.add(b.not_exists([b.eq(s, target) for s in slots]))
        model = solver.solve()
        assert all(model.raw(f"r{i}") != model.raw("t") for i in range(3))

    def test_lazy_mode_agrees_on_sat(self):
        solver = Solver()
        x = solver.int_var("x")
        ys = [solver.int_var(f"y{i}") for i in range(3)]
        solver.add(b.exists([b.eq(x, y) for y in ys]))
        solver.add(b.forall([b.ge(y, b.const(2)) for y in ys]))
        unfolded = solver.solve(unfold=True)
        lazy = solver.solve(unfold=False)
        assert unfolded is not None and lazy is not None
        assert solver.last_stats.iterations >= 1

    def test_lazy_mode_agrees_on_unsat(self):
        solver = Solver()
        x = solver.int_var("x")
        solver.add(b.forall([b.lt(x, b.const(0)), b.gt(x, b.const(0))]))
        assert solver.solve(unfold=True) is None
        assert solver.solve(unfold=False) is None

    def test_stats_populated(self):
        solver = Solver()
        x = solver.int_var("x")
        solver.add(b.eq(x, b.const(1)))
        solver.solve()
        stats = solver.last_stats
        assert stats.satisfiable
        assert stats.unfolded
        assert stats.elapsed >= 0


class TestChaseShape:
    """The PK functional-dependency pattern of genDBConstraints."""

    def _chase_problem(self):
        solver = Solver()
        pk0, pk1 = solver.int_var("r0.pk"), solver.int_var("r1.pk")
        a0, a1 = solver.int_var("r0.a"), solver.int_var("r1.a")
        solver.add(
            b.forall(
                [b.implies(b.eq(pk0, pk1), b.eq(a0, a1))], "pk:r"
            )
        )
        return solver

    def test_chase_allows_collapsed_tuples(self):
        solver = self._chase_problem()
        solver.add(b.eq(b.var("r0.pk"), b.var("r1.pk")))
        model = solver.solve()
        assert model.raw("r0.a") == model.raw("r1.a")

    def test_chase_allows_distinct_tuples(self):
        solver = self._chase_problem()
        solver.add(b.ne(b.var("r0.a"), b.var("r1.a")))
        model = solver.solve()
        assert model.raw("r0.pk") != model.raw("r1.pk")


class TestLimits:
    def test_node_limit_enforced(self):
        from repro.errors import SolverLimitError

        solver = Solver(SearchConfig(node_limit=3, enable_suggestions=False))
        names = [f"x{i}" for i in range(8)]
        for name in names:
            solver.int_var(name)
        # Force actual search: all distinct over a tight domain.
        for i, first in enumerate(names):
            for second in names[i + 1:]:
                solver.add(b.ne(b.var(first), b.var(second)))
        with pytest.raises(SolverLimitError):
            solver.solve()


class TestEvalShortCircuit:
    """Kleene evaluation short-circuits: all four Conj/Disj outcomes.

    A False part decides a conjunction and a True part decides a
    disjunction even when sibling parts are still unknown; with no
    deciding part, any unknown part makes the result unknown (None).
    """

    def _parts(self):
        from repro.solver.terms import Conj, Disj

        true_atom = b.eq(b.var("x"), b.const(1))    # x = 1
        false_atom = b.eq(b.var("x"), b.const(2))   # x = 2
        unknown_atom = b.eq(b.var("y"), b.const(1))  # y unassigned
        assignment = {"x": 1}
        return Conj, Disj, true_atom, false_atom, unknown_atom, assignment

    def test_conj_false_part_decides_despite_unknown(self):
        Conj, _, true_atom, false_atom, unknown, assignment = self._parts()
        formula = Conj((unknown, false_atom, true_atom))
        assert eval_formula(formula, assignment) is False

    def test_conj_unknown_part_makes_result_unknown(self):
        Conj, _, true_atom, _, unknown, assignment = self._parts()
        formula = Conj((true_atom, unknown))
        assert eval_formula(formula, assignment) is None

    def test_disj_true_part_decides_despite_unknown(self):
        _, Disj, true_atom, false_atom, unknown, assignment = self._parts()
        formula = Disj((unknown, false_atom, true_atom))
        assert eval_formula(formula, assignment) is True

    def test_disj_unknown_part_makes_result_unknown(self):
        _, Disj, _, false_atom, unknown, assignment = self._parts()
        formula = Disj((false_atom, unknown))
        assert eval_formula(formula, assignment) is None

    def test_fully_determined_conj_and_disj(self):
        Conj, Disj, true_atom, false_atom, _, assignment = self._parts()
        assert eval_formula(Conj((true_atom, true_atom)), assignment) is True
        assert eval_formula(Disj((false_atom, false_atom)), assignment) is False
