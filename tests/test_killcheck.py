"""Kill-check and survivor-classification tests."""

import random

import pytest

from repro.core import XDataGenerator, analyze_query
from repro.engine.relation import Relation
from repro.mutation import enumerate_mutants
from repro.sql.parser import parse_query
from repro.testing import (
    classify_survivors,
    evaluate_suite,
    format_kill_report,
    random_database,
    results_differ,
)
from repro.testing.killcheck import result_signature


class TestResultComparison:
    def test_equal_bags_compare_equal(self):
        a = Relation(["x", "y"], [(1, 2), (1, 2), (3, 4)])
        b = Relation(["x", "y"], [(3, 4), (1, 2), (1, 2)])
        assert not results_differ(a, b)

    def test_multiplicity_matters(self):
        a = Relation(["x"], [(1,), (1,)])
        b = Relation(["x"], [(1,)])
        assert results_differ(a, b)

    def test_column_order_ignored(self):
        a = Relation(["x", "y"], [(1, 2)])
        b = Relation(["y", "x"], [(2, 1)])
        assert not results_differ(a, b)

    def test_column_names_matter(self):
        a = Relation(["x"], [(1,)])
        b = Relation(["z"], [(1,)])
        assert results_differ(a, b)

    def test_null_values_compare(self):
        a = Relation(["x"], [(None,)])
        b = Relation(["x"], [(None,)])
        assert not results_differ(a, b)
        assert results_differ(a, Relation(["x"], [(0,)]))


class TestEvaluateSuite:
    def test_kill_report_structure(self, uni_schema_nofk):
        sql = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        space = enumerate_mutants(suite.analyzed)
        report = evaluate_suite(space, suite.databases)
        assert report.total == 2
        assert report.killed == 2
        assert report.survivors == []
        assert report.dataset_count == len(suite.databases)

    def test_stop_at_first_kill_same_counts(self, uni_schema_nofk):
        sql = (
            "SELECT * FROM instructor i, teaches t, course c "
            "WHERE i.id = t.id AND t.course_id = c.course_id"
        )
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        space = enumerate_mutants(suite.analyzed)
        full = evaluate_suite(space, suite.databases)
        fast = evaluate_suite(space, suite.databases, stop_at_first_kill=True)
        assert full.killed == fast.killed

    def test_report_formatting(self, uni_schema_nofk):
        sql = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
        suite = XDataGenerator(uni_schema_nofk).generate(sql)
        space = enumerate_mutants(suite.analyzed)
        report = evaluate_suite(space, suite.databases)
        text = format_kill_report(report)
        assert "mutants: 2" in text


class TestRandomDatabase:
    def test_random_instances_are_legal(self, uni_schema):
        rng = random.Random(7)
        for _ in range(5):
            db = random_database(uni_schema, rng)
            db.validate()  # no raise

    def test_respects_fk_topology(self, tiny_schema):
        rng = random.Random(1)
        db = random_database(tiny_schema, rng, rows_per_table=5)
        r_keys = {row[0] for row in db.relation("r").rows}
        for row in db.relation("s").rows:
            assert row[1] in r_keys

    def test_deterministic_given_seed(self, tiny_schema):
        db1 = random_database(tiny_schema, random.Random(3))
        db2 = random_database(tiny_schema, random.Random(3))
        assert db1.relation("r").rows == db2.relation("r").rows


class TestClassification:
    def test_equivalent_survivor_classified(self, uni_db):
        """With an FK, join -> right-outer at the FK side is equivalent."""
        from tests.workload import INSTRUCTOR_TEACHES_JOIN, schema_teaches_fk

        schema = schema_teaches_fk()
        sql = INSTRUCTOR_TEACHES_JOIN
        suite = XDataGenerator(schema).generate(sql)
        space = enumerate_mutants(suite.analyzed)
        report = evaluate_suite(space, suite.databases)
        assert len(report.survivors) == 1
        classification = classify_survivors(space, report.survivors)
        assert len(classification.likely_equivalent) == 1
        assert classification.missed == []

    def test_non_equivalent_survivor_detected(self, uni_schema_nofk):
        """Feed an empty suite: every mutant survives; the classifier must
        expose the non-equivalent ones with a witness instance."""
        sql = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
        aq = analyze_query(parse_query(sql), uni_schema_nofk)
        space = enumerate_mutants(aq)
        report = evaluate_suite(space, [])
        assert len(report.survivors) == 2
        classification = classify_survivors(space, report.survivors)
        assert len(classification.missed) == 2
        assert all(c.witness is not None for c in classification.missed)
