"""Fault-tolerance tests: budgets, retry ladder, isolation, injection.

The generation pipeline promises (DESIGN.md §5d) that a suite always
completes: a pathological solve degrades to a ``budget`` skip, an
unexpected exception to an ``error:<Type>`` skip, a crashed worker to a
sequential resume of only the unfinished specs — and every degradation
is named in the suite's health summary.  These tests force each failure
mode deterministically via :mod:`repro.testing.faults` (env-driven so
faults reach forked pool workers) and assert both the degradation *and*
that every non-degraded dataset is byte-identical to an uninjected run.
"""

from __future__ import annotations

import time

import pytest

from repro.core.generator import GenConfig, XDataGenerator
from repro.core.parallel import shutdown_pool, solve_specs_parallel
from repro.errors import GenerationError, PoolDegradedWarning, SolverLimitError
from repro.schema.catalog import Column, Schema, Table
from repro.schema.types import SqlType
from repro.solver import Solver
from repro.solver import builders as b
from repro.solver.search import SearchConfig
from repro.testing import faults

#: Derives exactly four specs (original + three comparison datasets),
#: all SAT, so every index 0..3 is a valid fault target and an
#: uninjected run has no skips to confound the assertions.
SQL = "SELECT v FROM t WHERE v > 5"
SPEC_COUNT = 4


def _schema():
    return Schema(
        [
            Table(
                "t",
                [Column("id", SqlType.INT), Column("v", SqlType.INT)],
                primary_key=("id",),
            )
        ]
    )


def _by_target(suite):
    return {d.target: d.db.pretty(only_nonempty=False) for d in suite.datasets}


@pytest.fixture(scope="module", autouse=True)
def _stop_pool_afterwards():
    yield
    shutdown_pool()


@pytest.fixture(autouse=True)
def _isolated_faults(monkeypatch):
    """Every test starts with no fault plan and fresh attempt counts."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    monkeypatch.delenv(faults.LOG_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def baseline():
    return XDataGenerator(_schema(), GenConfig()).generate(SQL)


def _fresh_pool_env(monkeypatch, plan, log=None):
    """Set the fault env and restart the pool so workers inherit it."""
    shutdown_pool()
    monkeypatch.setenv(faults.FAULTS_ENV, plan)
    if log is not None:
        monkeypatch.setenv(faults.LOG_ENV, str(log))


class TestSolverBudgetStats:
    """Satellite: solver effort is recorded structurally in SolveStats."""

    def _hard_problem(self, config):
        solver = Solver(config)
        names = [f"x{i}" for i in range(8)]
        for name in names:
            solver.int_var(name)
        for i, first in enumerate(names):
            for second in names[i + 1:]:
                solver.add(b.ne(b.var(first), b.var(second)))
        return solver

    def test_node_limit_trip_is_structured(self):
        solver = self._hard_problem(
            SearchConfig(node_limit=3, enable_suggestions=False)
        )
        with pytest.raises(SolverLimitError) as excinfo:
            solver.solve()
        assert excinfo.value.kind == "nodes"
        assert excinfo.value.nodes > 0
        assert excinfo.value.limit == 3
        stats = solver.last_stats
        assert stats is not None and stats.satisfiable is False
        assert stats.limit_hit == "nodes"
        assert stats.node_limit == 3
        assert stats.nodes == excinfo.value.nodes

    def test_deadline_zero_trips(self):
        solver = self._hard_problem(
            SearchConfig(deadline_s=0.0, enable_suggestions=False)
        )
        with pytest.raises(SolverLimitError) as excinfo:
            solver.solve()
        assert excinfo.value.kind == "deadline"
        assert solver.last_stats.limit_hit == "deadline"
        assert solver.last_stats.deadline_s == 0.0

    def test_clean_solve_records_budgets_untripped(self):
        solver = Solver(SearchConfig(node_limit=50, deadline_s=60.0))
        x = solver.int_var("x")
        solver.add(b.eq(x, b.const(7)))
        assert solver.solve() is not None
        stats = solver.last_stats
        assert stats.limit_hit is None
        assert stats.node_limit == 50
        assert stats.deadline_s == 60.0


class TestBudgetSkips:
    def test_injected_limit_yields_budget_skip(self, monkeypatch, baseline):
        """A node-budget trip on one spec degrades only that spec."""
        monkeypatch.setenv(faults.FAULTS_ENV, "1:limit")
        suite = XDataGenerator(_schema(), GenConfig(retries=1)).generate(SQL)
        assert len(suite.datasets) == SPEC_COUNT - 1
        assert len(suite.skipped) == 1
        skip = suite.skipped[0]
        assert skip.reason == "budget"
        assert skip.is_degraded
        assert skip.attempts == 2  # primary + one escalation retry
        assert suite.health.skipped_budget == 1
        assert suite.health.degraded_targets == [skip.target]
        assert not suite.health.ok
        baseline_dbs = _by_target(baseline)
        for target, pretty in _by_target(suite).items():
            assert pretty == baseline_dbs[target]

    def test_injected_limit_parallel(self, monkeypatch, baseline):
        _fresh_pool_env(monkeypatch, "1:limit")
        suite = XDataGenerator(
            _schema(), GenConfig(workers=4, retries=1)
        ).generate(SQL)
        assert len(suite.datasets) == SPEC_COUNT - 1
        assert suite.health.skipped_budget == 1
        assert suite.skipped[0].reason == "budget"
        baseline_dbs = _by_target(baseline)
        for target, pretty in _by_target(suite).items():
            assert pretty == baseline_dbs[target]

    def test_spec_deadline_zero_budgets_every_spec(self):
        suite = XDataGenerator(
            _schema(), GenConfig(spec_deadline_s=0.0)
        ).generate(SQL)
        assert not suite.datasets
        assert len(suite.skipped) == SPEC_COUNT
        assert all(s.reason == "budget" for s in suite.skipped)
        assert suite.health.skipped_budget == SPEC_COUNT

    def test_suite_deadline_zero_budgets_every_spec(self):
        suite = XDataGenerator(
            _schema(), GenConfig(suite_deadline_s=0.0)
        ).generate(SQL)
        assert not suite.datasets
        assert len(suite.skipped) == SPEC_COUNT
        assert all(s.reason == "budget" for s in suite.skipped)
        assert "budget=4" in suite.health.summary()


class TestRetryLadder:
    def test_escalation_retry_recovers(self, monkeypatch, baseline):
        """limit:1 trips only the first attempt; the retry succeeds and
        the recovered dataset is identical to the uninjected one."""
        monkeypatch.setenv(faults.FAULTS_ENV, "1:limit:1")
        suite = XDataGenerator(_schema(), GenConfig(retries=1)).generate(SQL)
        assert len(suite.datasets) == SPEC_COUNT
        assert not suite.skipped
        assert suite.health.retried == 1
        assert suite.health.ok
        retried = [d for d in suite.datasets if d.attempts > 1]
        assert len(retried) == 1
        assert _by_target(suite) == _by_target(baseline)

    def test_retries_zero_disables_escalation(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "1:limit:1")
        suite = XDataGenerator(_schema(), GenConfig(retries=0)).generate(SQL)
        assert len(suite.skipped) == 1
        assert suite.skipped[0].reason == "budget"
        assert suite.skipped[0].attempts == 1


class TestFailureIsolation:
    def test_error_becomes_typed_skip(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "2:error")
        suite = XDataGenerator(_schema(), GenConfig()).generate(SQL)
        assert len(suite.datasets) == SPEC_COUNT - 1
        skip = suite.skipped[0]
        assert skip.reason == "error:RuntimeError"
        assert "injected fault at spec 2" in skip.detail
        assert suite.health.errored == 1

    def test_fail_fast_budget_raises(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "1:limit")
        generator = XDataGenerator(
            _schema(), GenConfig(retries=0, fail_fast=True)
        )
        with pytest.raises(GenerationError, match="fail-fast"):
            generator.generate(SQL)

    def test_fail_fast_error_raises(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "1:error")
        generator = XDataGenerator(_schema(), GenConfig(fail_fast=True))
        with pytest.raises(RuntimeError, match="injected fault"):
            generator.generate(SQL)


class TestAcceptance:
    """The issue's acceptance scenario: one budget trip + one worker
    crash, and generate() still returns a complete suite whose health
    names both degraded specs, every other dataset byte-identical."""

    PLAN = "1:limit,2:crash"

    def _check(self, suite, baseline):
        assert len(suite.datasets) == SPEC_COUNT - 2
        assert len(suite.skipped) == 2
        reasons = {s.target: s.reason for s in suite.skipped}
        assert sorted(reasons.values()) == ["budget", "error:RuntimeError"]
        assert sorted(suite.health.degraded_targets) == sorted(reasons)
        assert suite.health.skipped_budget == 1
        assert suite.health.errored == 1
        assert not suite.health.ok
        baseline_dbs = _by_target(baseline)
        for target, pretty in _by_target(suite).items():
            assert pretty == baseline_dbs[target]

    def test_sequential(self, monkeypatch, baseline):
        monkeypatch.setenv(faults.FAULTS_ENV, self.PLAN)
        suite = XDataGenerator(_schema(), GenConfig(retries=1)).generate(SQL)
        self._check(suite, baseline)

    def test_parallel(self, monkeypatch, baseline, recwarn):
        _fresh_pool_env(monkeypatch, self.PLAN)
        suite = XDataGenerator(
            _schema(), GenConfig(workers=4, retries=1)
        ).generate(SQL)
        self._check(suite, baseline)
        # A crash only reaches a worker when the pool actually ran
        # (CPU-capped machines fall back to the in-process path, where
        # the crash degrades to the same error skip without a warning).
        if suite.health.pool_degraded:
            assert any(
                issubclass(w.category, PoolDegradedWarning) for w in recwarn
            )


class TestPoolIsolation:
    def test_worker_crash_resumes_only_unfinished(self, monkeypatch, tmp_path):
        """A mid-batch crash breaks the pool loudly; specs whose results
        already arrived are not re-solved in the parent."""
        log = tmp_path / "faults.log"
        _fresh_pool_env(monkeypatch, "2:crash", log=log)
        config = GenConfig(workers=4)
        with pytest.warns(PoolDegradedWarning):
            outcome = solve_specs_parallel(
                _schema(), SQL, config, SPEC_COUNT, cap_to_cpus=False
            )
        assert outcome.degraded
        assert 2 in outcome.resumed
        assert all(result is not None for result in outcome.results)
        assert outcome.results[2].skipped is not None
        assert outcome.results[2].skipped.reason == "error:RuntimeError"
        for index in range(SPEC_COUNT):
            if index in outcome.resumed:
                continue
            assert outcome.results[index].dataset is not None
        # The log names the process for every solve attempt: parent-side
        # ('p') attempts must be exactly the resumed specs.
        parent_specs = set()
        for line in log.read_text().splitlines():
            _pid, role, index = line.split(":")
            if role == "p":
                parent_specs.add(int(index))
        assert parent_specs == set(outcome.resumed)

    def test_hung_worker_times_out(self, monkeypatch):
        """A batch deadline bounds the wait on a hung worker; the hung
        spec comes back unfinished (None) instead of hanging the run."""
        _fresh_pool_env(monkeypatch, "1:sleep:5")
        config = GenConfig(workers=4)
        deadline = time.perf_counter() + 1.5
        with pytest.warns(PoolDegradedWarning):
            outcome = solve_specs_parallel(
                _schema(), SQL, config, SPEC_COUNT, cap_to_cpus=False,
                deadline=deadline,
            )
        assert outcome.degraded
        # The sleeping spec outlives the deadline everywhere: its pool
        # future times out and the sequential resume is deadline-gated,
        # so it stays None — the caller budget-skips it.
        assert outcome.results[1] is None
        assert outcome.results[0] is not None


class TestWorkloadIsolation:
    QUERIES = {
        "good": SQL,
        "bad": "SELECT FROM WHERE",
    }

    def test_failing_query_is_isolated(self):
        from repro.testing.workload import generate_workload

        suite = generate_workload(_schema(), self.QUERIES)
        assert [e.name for e in suite.entries] == ["good", "bad"]
        good, bad = suite.entries
        assert not good.failed and good.suite is not None
        assert bad.failed and bad.suite is None
        assert "ParseError" in bad.error or "Error" in bad.error
        assert good.killed > 0
        assert "FAILED" in suite.summary()
        assert suite.failures == [bad]

    def test_fail_fast_propagates(self):
        from repro.errors import XDataError
        from repro.testing.workload import generate_workload

        with pytest.raises(XDataError):
            generate_workload(_schema(), self.QUERIES, fail_fast=True)

    def test_parallel_path_isolates_too(self):
        from repro.testing.workload import generate_workload

        shutdown_pool()
        suite = generate_workload(_schema(), self.QUERIES, workers=4)
        good, bad = suite.entries
        assert not good.failed
        assert bad.failed and bad.error


class TestFaultPlanParsing:
    def test_round_trip(self):
        plan = faults.parse_plan("1:limit,3:crash,4:sleep:0.5,6:error:2")
        assert plan[1] == faults.Fault("limit", 0.0)
        assert plan[3] == faults.Fault("crash", 0.0)
        assert plan[4] == faults.Fault("sleep", 0.5)
        assert plan[6] == faults.Fault("error", 2.0)

    def test_malformed_entry_rejected(self):
        with pytest.raises(ValueError):
            faults.parse_plan("1")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            faults.parse_plan("1:explode")

    def test_sleep_needs_duration(self):
        with pytest.raises(ValueError):
            faults.parse_plan("1:sleep")

    def test_no_plan_is_inert(self, baseline):
        """With only the log variable set, generation is unchanged."""
        suite = XDataGenerator(_schema(), GenConfig()).generate(SQL)
        assert _by_target(suite) == _by_target(baseline)
