"""Coverage for supporting modules: errors, symbols, reports, input-db."""

import pytest

from repro import errors
from repro.core import GenConfig, XDataGenerator
from repro.core.analyze import analyze_query
from repro.core.input_database import input_constraints
from repro.core.tuplespace import ProblemSpace
from repro.datasets import schema_with_fks, university_sample_database
from repro.engine.database import Database
from repro.solver import Solver
from repro.solver.model import SymbolTable
from repro.sql.parser import parse_query
from repro.testing.report import format_suite


class TestErrorHierarchy:
    def test_all_derive_from_xdata_error(self):
        for name in (
            "SqlError", "LexError", "ParseError", "UnsupportedSqlError",
            "SchemaError", "CatalogError", "EngineError", "IntegrityError",
            "ExecutionError", "SolverError", "UnsatisfiableError",
            "SolverLimitError", "GenerationError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.XDataError)

    def test_integrity_error_carries_violations(self):
        err = errors.IntegrityError("boom", ["v1", "v2"])
        assert err.violations == ["v1", "v2"]

    def test_lex_error_position(self):
        err = errors.LexError("bad", "text", 3)
        assert err.position == 3


class TestSymbolTable:
    def test_interning_is_stable(self):
        table = SymbolTable()
        first = table.intern("pool", "CS")
        assert table.intern("pool", "CS") == first
        assert table.decode(first) == "CS"

    def test_pools_have_disjoint_code_ranges(self):
        table = SymbolTable()
        a = table.intern("pool_a", "x")
        b = table.intern("pool_b", "x")
        assert a != b

    def test_fresh_symbols_named_after_pool(self):
        table = SymbolTable()
        code = table.fresh("department.dept_name")
        assert table.decode(code) == "dept_name~1"
        assert table.decode(table.fresh("department.dept_name")) == "dept_name~2"

    def test_known_codes_sorted(self):
        table = SymbolTable()
        codes = [table.intern("p", v) for v in ("c", "a", "b")]
        assert table.known_codes("p") == sorted(codes)


class TestFormatSuite:
    def test_includes_skips_and_groups(self):
        schema = schema_with_fks(["teaches.id"])
        suite = XDataGenerator(schema).generate(
            "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
        )
        text = format_suite(suite)
        assert "datasets: 2" in text
        assert "skipped:structurally-equivalent" in text
        assert "generation time" in text


class TestInputConstraints:
    def _space(self, schema):
        aq = analyze_query(
            parse_query("SELECT * FROM instructor i WHERE i.salary > 0"),
            schema,
        )
        space = ProblemSpace(aq, Solver())
        space.finalize_declarations()
        return space

    def test_domain_mode_one_constraint_per_column_slot(self):
        schema = schema_with_fks([])
        space = self._space(schema)
        sample = university_sample_database(schema)
        constraints = input_constraints(space, sample, "domain")
        # instructor has 4 columns, 1 slot.
        assert len(constraints) == 4

    def test_tuples_mode_one_constraint_per_slot(self):
        schema = schema_with_fks([])
        space = self._space(schema)
        sample = university_sample_database(schema)
        constraints = input_constraints(space, sample, "tuples")
        assert len(constraints) == 1

    def test_empty_input_relation_contributes_nothing(self):
        schema = schema_with_fks([])
        space = self._space(schema)
        empty = Database(schema)
        assert input_constraints(space, empty, "domain") == []

    def test_unknown_mode_rejected(self):
        schema = schema_with_fks([])
        space = self._space(schema)
        with pytest.raises(ValueError):
            input_constraints(space, Database(schema), "nope")

    def test_tuples_mode_constrains_whole_rows(self):
        schema = schema_with_fks([])
        sample = university_sample_database(schema)
        config = GenConfig(input_db=sample, input_mode="tuples")
        suite = XDataGenerator(schema, config).generate(
            "SELECT * FROM instructor i WHERE i.salary > 90000"
        )
        original = suite.datasets[0]
        assert original.used_input_db
        sample_rows = set(sample.relation("instructor").rows)
        for row in original.db.relation("instructor").rows:
            assert row in sample_rows


class TestGeneratedDatasetPretty:
    def test_pretty_mentions_relaxation(self):
        from repro.schema.catalog import Column, Schema, Table
        from repro.schema.types import SqlType

        schema = Schema(
            [
                Table(
                    "t",
                    [Column("g", SqlType.INT), Column("a", SqlType.INT)],
                    primary_key=("g",),
                )
            ]
        )
        suite = XDataGenerator(schema).generate(
            "SELECT t.g, SUM(t.a) FROM t GROUP BY t.g"
        )
        agg = next(d for d in suite.datasets if d.group == "aggregate")
        assert "relaxed" in agg.pretty()
