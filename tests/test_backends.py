"""Backend contract tests: engine vs SQLite (DESIGN.md §5f).

Every backend must produce the same result bags on the university
workload, reject exactly the datasets the engine's integrity checker
rejects, and report identical kill verdicts for the paper's walkthrough
query.  SQLite is exercised both with native outer joins and with the
RIGHT/FULL compatibility rewrites forced on.
"""

from __future__ import annotations

import pytest

from repro.backends import (
    BACKENDS,
    Backend,
    BackendDisagreement,
    BackendError,
    CrossChecker,
    EngineBackend,
    SqliteBackend,
    SqliteHandle,
    resolve_backend,
    schema_to_sqlite_ddl,
    undeclarable_foreign_keys,
)
from repro.datasets.university import UNIVERSITY_QUERIES
from repro.engine.database import Database
from repro.engine.plan import compile_query
from repro.engine.relation import Relation
from repro.errors import IntegrityError
from repro.mutation import enumerate_mutants
from repro.sql.parser import parse_query
from repro.testing.killcheck import evaluate_suite, result_signature

FIG1_QUERY = (
    "SELECT * FROM instructor i, teaches t, course c "
    "WHERE i.id = t.id AND t.course_id = c.course_id"
)

BACKEND_FACTORIES = {
    "engine": EngineBackend,
    "sqlite": SqliteBackend,
    "sqlite-rewrites": lambda: SqliteBackend(force_join_rewrites=True),
}


@pytest.fixture(params=sorted(BACKEND_FACTORIES))
def backend(request):
    return BACKEND_FACTORIES[request.param]()


def signature_on(backend, db, sql):
    plan = compile_query(parse_query(sql))
    handle = backend.load(db)
    try:
        return result_signature(backend.execute(handle, plan))
    finally:
        backend.close(handle)


# ---------------------------------------------------------------------------
# Result-bag agreement on the bundled workload.


@pytest.mark.parametrize("name", sorted(UNIVERSITY_QUERIES))
def test_university_queries_agree_with_engine(backend, name, uni_db):
    sql = UNIVERSITY_QUERIES[name]["sql"]
    expected = signature_on(EngineBackend(), uni_db, sql)
    assert signature_on(backend, uni_db, sql) == expected


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT * FROM advisor a RIGHT OUTER JOIN student s ON a.s_id = s.id",
        "SELECT * FROM advisor a FULL OUTER JOIN instructor i ON a.i_id = i.id",
        "SELECT * FROM teaches t NATURAL FULL OUTER JOIN takes k",
        "SELECT i.dept_name, AVG(i.salary), COUNT(*) FROM instructor i "
        "GROUP BY i.dept_name HAVING COUNT(i.id) > 1",
        "SELECT i.name, i.salary / 3 FROM instructor i",
    ],
)
def test_dialect_shims_agree_with_engine(backend, sql, uni_db):
    expected = signature_on(EngineBackend(), uni_db, sql)
    assert signature_on(backend, uni_db, sql) == expected


# ---------------------------------------------------------------------------
# Integrity parity: SQLite's declarative constraints reject exactly the
# datasets the engine's integrity checker rejects.


def _violating_databases(uni_schema):
    dup_pk = Database(uni_schema)
    dup_pk.insert("department", ("Taylor", "Physics", 100000))
    dup_pk.insert("department", ("Watson", "Physics", 90000))

    null_pk = Database(uni_schema)
    null_pk.insert("department", ("Taylor", None, 100000))

    dangling_fk = Database(uni_schema)
    dangling_fk.insert("department", ("Taylor", "Physics", 100000))
    dangling_fk.insert("instructor", ("10101", "Smith", "History", 60000))
    return {"dup-pk": dup_pk, "null-pk": null_pk, "dangling-fk": dangling_fk}


@pytest.mark.parametrize("kind", ["dup-pk", "null-pk", "dangling-fk"])
def test_invalid_datasets_rejected_by_every_backend(backend, kind, uni_schema):
    db = _violating_databases(uni_schema)[kind]
    with pytest.raises(IntegrityError):
        db.validate()
    with pytest.raises(IntegrityError):
        backend.load(db)


def test_valid_dataset_loads_on_every_backend(backend, uni_db):
    handle = backend.load(uni_db)
    try:
        assert handle is not None
    finally:
        backend.close(handle)


def test_sqlite_enforces_foreign_keys_pragma(uni_db):
    backend = SqliteBackend()
    handle = backend.load(uni_db)
    try:
        assert isinstance(handle, SqliteHandle)
        (enabled,) = handle.conn.execute("PRAGMA foreign_keys").fetchone()
        assert enabled == 1
    finally:
        backend.close(handle)


def test_university_foreign_keys_all_declarable(uni_schema):
    assert undeclarable_foreign_keys(uni_schema) == []
    ddl = schema_to_sqlite_ddl(uni_schema)
    assert ddl.count("FOREIGN KEY") == sum(
        len(t.foreign_keys) for t in uni_schema.tables
    )
    assert "WITHOUT ROWID" in ddl


# ---------------------------------------------------------------------------
# Registry and capabilities.


def test_resolve_backend_registry():
    assert isinstance(resolve_backend(None), EngineBackend)
    assert isinstance(resolve_backend("sqlite"), SqliteBackend)
    assert isinstance(resolve_backend("Engine"), EngineBackend)
    instance = SqliteBackend()
    assert resolve_backend(instance) is instance
    with pytest.raises(BackendError, match="engine"):
        resolve_backend("postgres")
    assert set(BACKENDS) == {"engine", "sqlite"}


def test_backends_satisfy_protocol(backend):
    assert isinstance(backend, Backend)
    assert backend.name in ("engine", "sqlite")
    assert backend.capabilities().natural_join


# ---------------------------------------------------------------------------
# Cross-check oracle: agreement is silent, disagreement is structured.


class _LyingBackend(SqliteBackend):
    """A SQLite backend that drops one row from every result."""

    def execute(self, handle, plan):
        relation = super().execute(handle, plan)
        return Relation(list(relation.columns), list(relation.rows[1:]))


def test_cross_checker_passes_when_backends_agree(uni_db):
    plan = compile_query(parse_query(UNIVERSITY_QUERIES["Q1"]["sql"]))
    with CrossChecker(EngineBackend(), SqliteBackend()) as checker:
        signature = checker.signature(plan, uni_db, "Q1")
    assert signature == signature_on(EngineBackend(), uni_db,
                                     UNIVERSITY_QUERIES["Q1"]["sql"])


def test_cross_checker_raises_structured_disagreement(uni_db):
    plan = compile_query(parse_query(UNIVERSITY_QUERIES["Q1"]["sql"]))
    with CrossChecker(EngineBackend(), _LyingBackend()) as checker:
        with pytest.raises(BackendDisagreement) as excinfo:
            checker.signature(plan, uni_db, "Q1 original")
    exc = excinfo.value
    assert exc.context == "Q1 original"
    assert exc.dataset is uni_db
    assert set(exc.results) == {"engine", "sqlite"}
    assert "SELECT" in exc.sql
    assert exc.plan == plan
    detail = exc.detail()
    assert "Q1 original" in detail
    assert "engine result" in detail and "sqlite result" in detail


# ---------------------------------------------------------------------------
# Kill-verdict equivalence on the paper's walkthrough query.


def test_fig1_kill_verdicts_identical_across_backends(uni_schema):
    from repro.core.generator import XDataGenerator

    suite = XDataGenerator(uni_schema).generate(FIG1_QUERY)
    space = enumerate_mutants(suite.analyzed, include_full_outer=True)
    verdicts = {}
    for spec in (None, "engine", "sqlite"):
        report = evaluate_suite(space, suite.databases, backend=spec)
        verdicts[spec] = [o.killed for o in report.outcomes]
    assert verdicts[None] == verdicts["engine"] == verdicts["sqlite"]
    cross = evaluate_suite(
        space, suite.databases, backend="sqlite", cross_check=True
    )
    assert [o.killed for o in cross.outcomes] == verdicts[None]
    forced = evaluate_suite(
        space, suite.databases,
        backend=SqliteBackend(force_join_rewrites=True),
    )
    assert [o.killed for o in forced.outcomes] == verdicts[None]
