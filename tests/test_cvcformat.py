"""CVC3-style constraint rendering."""

from repro.core import GenConfig, XDataGenerator
from repro.datasets import schema_with_fks
from repro.solver import builders as b
from repro.solver.cvcformat import assertions, formula_to_cvc, positional_layout


def test_atom_rendering():
    atom = b.eq(b.var("b[0].x"), b.var("c[1].x") + b.const(10))
    assert formula_to_cvc(atom) == "(b[0].x = c[1].x + 10)"


def test_diamond_becomes_slash_eq():
    atom = b.ne(b.var("r[0].a"), b.const(5))
    assert "/=" in formula_to_cvc(atom)


def test_order_atoms():
    assert formula_to_cvc(b.lt(b.var("x"), b.const(3))) == "(x < 3)"
    assert formula_to_cvc(b.ge(b.var("x"), b.const(3))) == "(3 <= x)"


def test_not_exists_rendering():
    formula = b.not_exists(
        [b.eq(b.var("b[0].x"), b.var("c[0].x") + b.const(10))],
        "i : B_INT",
    )
    text = formula_to_cvc(formula)
    assert text.startswith("(FORALL (i : B_INT)")
    assert "/=" in text


def test_positional_notation():
    """Section V-A: CVC3 uses positions, not attribute names."""
    schema = schema_with_fks([])
    layout = positional_layout(schema)
    atom = b.eq(b.var("instructor[0].id"), b.var("teaches[0].id"))
    text = formula_to_cvc(atom, layout)
    assert text == "(instructor[0].0 = teaches[0].0)"


def test_assert_lines():
    text = assertions([b.eq(b.var("x"), b.const(1)), b.ne(b.var("y"), b.const(2))])
    lines = text.splitlines()
    assert len(lines) == 2
    assert all(line.startswith("ASSERT ") and line.endswith(";") for line in lines)


def test_generator_trace_attaches_constraints():
    schema = schema_with_fks([])
    config = GenConfig(trace_constraints=True)
    suite = XDataGenerator(schema, config).generate(
        "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
    )
    nullify = next(d for d in suite.datasets if d.group == "eqclass")
    assert nullify.constraints_cvc
    assert "ASSERT" in nullify.constraints_cvc
    assert "FORALL" in nullify.constraints_cvc  # the NOT EXISTS nullification


def test_trace_off_by_default():
    schema = schema_with_fks([])
    suite = XDataGenerator(schema).generate(
        "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"
    )
    assert all(d.constraints_cvc is None for d in suite.datasets)
