"""ProblemSpace: slot allocation, variable typing, predicate translation."""

import pytest

from repro.core.analyze import analyze_query
from repro.core.dbconstraints import (
    add_fk_support_slots,
    db_constraints,
    foreign_key_constraints,
    primary_key_constraints,
)
from repro.core.tuplespace import ProblemSpace, slot_var_name
from repro.datasets import schema_with_fks
from repro.errors import UnsupportedSqlError
from repro.solver import Solver
from repro.solver.terms import Quantified
from repro.sql.ast import ColumnRef, Comparison, Literal
from repro.sql.parser import parse_query


def make_space(sql, schema, copies=1):
    aq = analyze_query(parse_query(sql), schema)
    return ProblemSpace(aq, Solver(), copies=copies)


TWO = "SELECT * FROM instructor i, teaches t WHERE i.id = t.id"


class TestSlots:
    def test_one_slot_per_occurrence(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk)
        assert space.sizes == {"instructor": 1, "teaches": 1}
        assert space.slot_of("i") == 0

    def test_repeated_occurrences_share_array(self, uni_schema_nofk):
        sql = "SELECT * FROM course c1, course c2 WHERE c1.course_id = c2.course_id"
        space = make_space(sql, uni_schema_nofk)
        assert space.sizes == {"course": 2}
        assert space.slot_of("c1") == 0
        assert space.slot_of("c2") == 1

    def test_copies_allocate_per_occurrence(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk, copies=3)
        assert space.sizes == {"instructor": 3, "teaches": 3}
        assert space.slot_of("i", 2) == 2

    def test_support_slot_appends(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk)
        index = space.add_support_slot("instructor")
        assert index == 1
        assert list(space.table_slots("instructor")) == [0, 1]

    def test_fk_support_chain(self):
        """teaches.course_id -> course.course_id: one spare course slot."""
        schema = schema_with_fks(["teaches.course_id", "course.dept_name"])
        sql = (
            "SELECT * FROM teaches t, course c, department d "
            "WHERE t.course_id = c.course_id AND c.dept_name = d.dept_name"
        )
        space = make_space(sql, schema)
        add_fk_support_slots(space, "teaches", "course_id")
        # course gets a spare slot for the dangling course_id; the spare
        # slot's dept_name can reference the existing department tuple, so
        # the chain does NOT grow department.
        assert space.sizes["course"] == 2
        assert space.sizes["department"] == 1

    def test_fk_chain_cycle_terminates(self):
        from repro.schema.catalog import Column, ForeignKey, Schema, Table
        from repro.schema.types import SqlType

        schema = Schema(
            [
                Table(
                    "emp",
                    [Column("id", SqlType.INT), Column("mgr", SqlType.INT)],
                    primary_key=("id",),
                    foreign_keys=[ForeignKey("emp", ("mgr",), "emp", ("id",))],
                )
            ]
        )
        sql = "SELECT * FROM emp e1, emp e2 WHERE e1.mgr = e2.id"
        space = make_space(sql, schema)
        add_fk_support_slots(space, "emp", "mgr")
        assert space.sizes["emp"] >= 2  # terminated


class TestVariables:
    def test_int_var_declared(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk)
        space.var("instructor", 0, "salary")
        assert space.solver.has_var("instructor[0].salary")
        assert space.solver.info("instructor[0].salary").kind == "int"

    def test_str_var_pool_and_preferences(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk)
        space.var("instructor", 0, "dept_name")
        info = space.solver.info("instructor[0].dept_name")
        assert info.kind == "str"
        assert info.preferred  # from the schema domain

    def test_rotation_staggers_preferences(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk)
        space.add_support_slot("instructor")
        space.var("instructor", 0, "dept_name")
        space.var("instructor", 1, "dept_name")
        first = space.solver.info("instructor[0].dept_name").preferred
        second = space.solver.info("instructor[1].dept_name").preferred
        assert first != second
        assert set(first) == set(second)

    def test_finalize_declares_everything(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk)
        space.finalize_declarations()
        for column in uni_schema_nofk.table("teaches").column_names:
            assert space.solver.has_var(slot_var_name("teaches", 0, column))


class TestTranslation:
    def test_equijoin_formula(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk)
        pred = Comparison("=", ColumnRef("i", "id"), ColumnRef("t", "id"))
        formula = space.pred_formula(pred)
        assert set(formula.variables) == {
            "instructor[0].id", "teaches[0].id"
        }

    def test_arithmetic_translation(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk)
        pred = Comparison(
            "=",
            ColumnRef("i", "salary"),
            Literal(3),
        )
        formula = space.pred_formula(pred, op=">")
        assert formula.evaluate({"instructor[0].salary": 4}) is True
        assert formula.evaluate({"instructor[0].salary": 3}) is False

    def test_string_literal_interned(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk)
        pred = Comparison("=", ColumnRef("i", "dept_name"), Literal("CS"))
        formula = space.pred_formula(pred)
        code = space.solver.intern(
            space.aq.pools.pool_of("instructor", "dept_name"), "CS"
        )
        assert formula.evaluate({"instructor[0].dept_name": code}) is True

    def test_order_on_strings_translates(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk)
        pred = Comparison("=", ColumnRef("i", "dept_name"), Literal("CS"))
        formula = space.pred_formula(pred, op="<")
        pool = space.aq.pools.pool_of("instructor", "dept_name")
        cs = space.solver.intern(pool, "CS")
        biology = space.solver.intern(pool, "Biology")
        assert formula.evaluate({"instructor[0].dept_name": biology}) is True
        assert formula.evaluate({"instructor[0].dept_name": cs}) is False

    def test_overrides_sweep_slot(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk)
        space.add_support_slot("instructor")
        pred = Comparison("=", ColumnRef("i", "id"), ColumnRef("t", "id"))
        formula = space.pred_formula(pred, overrides={"i": 1})
        assert "instructor[1].id" in formula.variables

    def test_not_exists_covers_whole_array(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk)
        space.add_support_slot("instructor")
        value = space.attr_var(
            __import__("repro.core.attrs", fromlist=["Attr"]).Attr("t", "id")
        )
        formula = space.not_exists_value("instructor", "id", value)
        assert isinstance(formula, Quantified)
        assert len(formula.instances) == 2

    def test_products_of_attributes_rejected(self, uni_schema_nofk):
        from repro.sql.ast import BinaryOp

        space = make_space(TWO, uni_schema_nofk)
        pred = Comparison(
            "=",
            ColumnRef("i", "salary"),
            BinaryOp("*", ColumnRef("i", "id"), ColumnRef("t", "id")),
        )
        with pytest.raises(UnsupportedSqlError):
            space.pred_formula(pred)


class TestDbConstraints:
    def test_no_pk_constraints_for_single_slots(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk)
        assert primary_key_constraints(space) == []

    def test_pk_chase_for_multi_slot_tables(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk)
        space.add_support_slot("instructor")
        constraints = primary_key_constraints(space)
        assert len(constraints) == 1
        assert constraints[0].label == "pk:instructor"

    def test_fk_constraints_only_for_in_query_targets(self):
        schema = schema_with_fks(["teaches.id", "instructor.dept_name"])
        space = make_space(TWO, schema)
        constraints = foreign_key_constraints(space)
        labels = [c.label for c in constraints]
        # teaches->instructor is in-query; instructor->department is not.
        assert any("teaches" in label for label in labels)
        assert not any("department" in label for label in labels)

    def test_db_constraints_combines(self, uni_schema_nofk):
        space = make_space(TWO, uni_schema_nofk)
        assert db_constraints(space) == (
            primary_key_constraints(space) + foreign_key_constraints(space)
        )
