"""Property-based tests for dataset minimization (Hypothesis).

:func:`repro.testing.minimize.minimize_dataset` underpins every bug
report the conformance harness and the fuzzing campaign emit — a buggy
shrinker corrupts evidence.  Two properties must hold for arbitrary
instances and (well-behaved) predicates:

* **idempotence** — minimizing an already-minimized dataset changes
  nothing: the result is a row-wise local minimum by definition;
* **predicate preservation** — whenever the predicate holds on the
  input, it still holds on the minimized dataset (a repro that stops
  reproducing after shrinking is worse than no shrinking at all).

Predicates are drawn as monotone-ish structural conditions (row-count
thresholds, value membership, cross-table conjunctions) plus an
adversarial raising wrapper, since ``minimize_dataset`` must treat a
raising predicate as False rather than propagate.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine.database import Database
from repro.schema.ddl import parse_ddl
from repro.testing.minimize import minimize_dataset

_DDL = """
CREATE TABLE dept (dname VARCHAR(10) PRIMARY KEY, budget INT);
CREATE TABLE emp (
    eid INT PRIMARY KEY,
    dname VARCHAR(10),
    salary INT
);
"""


def _schema():
    return parse_ddl(_DDL)


_DEPTS = ("cs", "ee", "math")


@st.composite
def databases(draw):
    """Small two-table instances (no FK enforcement in the predicates,
    so any row combination is fair game)."""
    db = Database(_schema())
    dept_rows = draw(
        st.lists(
            st.tuples(
                st.sampled_from(_DEPTS),
                st.one_of(st.none(), st.integers(0, 100)),
            ),
            max_size=4,
            unique_by=lambda r: r[0],
        )
    )
    for row in dept_rows:
        db.insert("dept", row)
    emp_rows = draw(
        st.lists(
            st.tuples(
                st.integers(1, 50),
                st.one_of(st.none(), st.sampled_from(_DEPTS)),
                st.one_of(st.none(), st.integers(0, 10)),
            ),
            max_size=6,
            unique_by=lambda r: r[0],
        )
    )
    for row in emp_rows:
        db.insert("emp", row)
    return db


@st.composite
def predicates(draw):
    """A predicate over instances, with a human-readable label."""
    kind = draw(
        st.sampled_from(
            ["emp-count", "dept-count", "has-null-salary", "total", "both"]
        )
    )
    threshold = draw(st.integers(0, 3))
    if kind == "emp-count":
        return (
            f"len(emp) >= {threshold}",
            lambda db: len(db.relation("emp").rows) >= threshold,
        )
    if kind == "dept-count":
        return (
            f"len(dept) >= {threshold}",
            lambda db: len(db.relation("dept").rows) >= threshold,
        )
    if kind == "has-null-salary":
        return (
            "some emp.salary IS NULL",
            lambda db: any(
                row[2] is None for row in db.relation("emp").rows
            ),
        )
    if kind == "total":
        return (
            f"total_rows >= {threshold}",
            lambda db: db.total_rows() >= threshold,
        )
    return (
        f"emp >= {threshold} and dept nonempty",
        lambda db: len(db.relation("emp").rows) >= threshold
        and len(db.relation("dept").rows) >= 1,
    )


_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _rows(db: Database) -> dict:
    return {
        name: sorted(db.relation(name).rows, key=repr)
        for name in db.table_names
    }


@_SETTINGS
@given(db=databases(), labelled=predicates())
def test_minimize_is_idempotent(db, labelled):
    """minimize(minimize(db)) == minimize(db), row for row."""
    _label, predicate = labelled
    if not predicate(db):
        return  # nothing to shrink against
    once = minimize_dataset(db, predicate)
    twice = minimize_dataset(once, predicate)
    assert _rows(twice) == _rows(once)


@_SETTINGS
@given(db=databases(), labelled=predicates())
def test_minimize_preserves_predicate(db, labelled):
    """The disagreement (predicate) still reproduces after shrinking."""
    _label, predicate = labelled
    if not predicate(db):
        return
    minimized = minimize_dataset(db, predicate)
    assert predicate(minimized), (
        "minimization lost the repro: predicate no longer holds"
    )
    # And shrinking never grows the instance.
    assert minimized.total_rows() <= db.total_rows()


@_SETTINGS
@given(db=databases(), labelled=predicates())
def test_minimize_treats_raising_predicate_as_false(db, labelled):
    """A predicate that raises on some candidates still yields a valid,
    predicate-preserving minimum (raises are 'reduction not taken')."""
    _label, predicate = labelled
    if not predicate(db):
        return

    def spiky(candidate: Database) -> bool:
        # Raise instead of returning False: the shrinker must treat
        # both the same way.
        if not predicate(candidate):
            raise RuntimeError("injected predicate failure")
        return True

    minimized = minimize_dataset(db, spiky)
    assert predicate(minimized)


@_SETTINGS
@given(db=databases())
def test_minimize_never_mutates_input(db):
    """The input instance is copied, not shrunk in place."""
    before = _rows(db)
    minimize_dataset(db, lambda candidate: True)
    assert _rows(db) == before
