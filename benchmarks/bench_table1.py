"""Table I — inner-join queries: datasets generated, mutants killed, time
with and without quantifier unfolding.

Paper reference (Table I): for queries of 1-6 joins over 2-7 relations
with 0..k foreign keys, the number of datasets generated and mutants
killed decrease as foreign keys are added, and unfolding quantifiers
speeds solving up, with the gap growing with join count.

Run:  pytest benchmarks/bench_table1.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core import GenConfig, XDataGenerator
from repro.datasets import UNIVERSITY_QUERIES, schema_with_fks
from repro.mutation import enumerate_mutants
from repro.testing import evaluate_suite

from _tables import add_row

CAPTION = "TABLE I: RESULTS FOR INNER JOIN QUERIES"
COLUMNS = [
    "Query", "#Joins(#Rel)", "#FK", "#Datasets", "#MutantsKilled",
    "Time w/o unfolding (s)", "Time w/ unfolding (s)",
]

ROWS = [
    (name, fks)
    for name in ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]
    for fks in UNIVERSITY_QUERIES[name]["fk_rows"]
]

_kill_cache: dict[tuple[str, int], dict] = {}
_row_store: dict[tuple[str, int], dict] = {}


def _kill_stats(name: str, fks: list[str]) -> dict:
    key = (name, len(fks))
    if key not in _kill_cache:
        info = UNIVERSITY_QUERIES[name]
        schema = schema_with_fks(fks)
        suite = XDataGenerator(schema).generate(info["sql"])
        space = enumerate_mutants(suite.analyzed)
        report = evaluate_suite(
            space, suite.databases, stop_at_first_kill=True
        )
        _kill_cache[key] = {
            "datasets": suite.non_original_count(),
            "killed": report.killed,
            "mutants": report.total,
        }
    return _kill_cache[key]


@pytest.mark.parametrize(
    "unfold", [True, False], ids=["with-unfolding", "without-unfolding"]
)
@pytest.mark.parametrize(
    "name,fks", ROWS, ids=[f"{n}-fk{len(f)}" for n, f in ROWS]
)
def test_table1(benchmark, name, fks, unfold):
    info = UNIVERSITY_QUERIES[name]
    schema = schema_with_fks(fks)
    config = GenConfig(unfold=unfold)

    def generate():
        return XDataGenerator(schema, config).generate(info["sql"])

    suite = benchmark.pedantic(generate, rounds=3, iterations=1)
    stats = _kill_stats(name, fks)
    assert suite.non_original_count() == stats["datasets"]
    benchmark.extra_info.update(stats)

    mean = benchmark.stats.stats.mean
    key = (name, len(fks))
    row = _row_store.setdefault(
        key,
        {
            "Query": name.lstrip("Q"),
            "#Joins(#Rel)": f"{info['joins']} ({len(info['relations'])})",
            "#FK": len(fks),
            "#Datasets": stats["datasets"],
            "#MutantsKilled": f"{stats['killed']} (of {stats['mutants']})",
        },
    )
    column = "Time w/ unfolding (s)" if unfold else "Time w/o unfolding (s)"
    row[column] = f"{mean:.3f}"
    if all(c in row for c in COLUMNS):
        add_row("table1", CAPTION, COLUMNS, row)
