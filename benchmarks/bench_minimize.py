"""Suite minimization (the conclusions' "pruning redundant datasets").

Reports, per Table I query at 0 FKs, the generated suite size, the
minimized size, and that the kill count is preserved — plus the greedy
set-cover's own cost.

Run:  pytest benchmarks/bench_minimize.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core import XDataGenerator
from repro.datasets import UNIVERSITY_QUERIES, schema_with_fks
from repro.mutation import enumerate_mutants
from repro.testing import evaluate_suite, minimize_suite

from _tables import add_row

CAPTION = "EXTENSION: SUITE MINIMIZATION (greedy set cover, no FKs)"
COLUMNS = [
    "Query", "#Datasets", "#Minimized", "#Killed (before)", "#Killed (after)",
    "Minimize time (s)",
]

NAMES = ["Q2", "Q3", "Q4", "Q11"]


@pytest.mark.parametrize("name", NAMES)
def test_minimization(benchmark, name):
    info = UNIVERSITY_QUERIES[name]
    schema = schema_with_fks([])
    suite = XDataGenerator(schema).generate(info["sql"])
    space = enumerate_mutants(suite.analyzed)

    def run():
        return minimize_suite(suite, space)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    before = result.report.killed
    after = evaluate_suite(space, [d.db for d in result.kept]).killed
    assert after == before
    add_row(
        "minimize",
        CAPTION,
        COLUMNS,
        {
            "Query": name.lstrip("Q"),
            "#Datasets": len(suite.datasets),
            "#Minimized": result.kept_count,
            "#Killed (before)": before,
            "#Killed (after)": after,
            "Minimize time (s)": f"{benchmark.stats.stats.mean:.3f}",
        },
    )
