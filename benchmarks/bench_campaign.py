"""Campaign throughput benchmark: cases/sec across the worker pool.

Runs a fixed-seed differential fuzzing campaign (all three oracles,
corpus evolution, per-round checkpointing — the full production path)
at several worker-pool widths and reports sustained throughput in
cases per second, plus the per-case execution counts that explain it.
Each arm runs in a fresh directory, so checkpoint/restore costs are in
the measurement — that is the price the crash-safety design actually
charges at runtime.

Results are written to ``BENCH_campaign.json`` at the repository root.

Run:  PYTHONPATH=src python benchmarks/bench_campaign.py
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import time

from repro.campaign import CampaignConfig, CampaignDriver

SEED = 1234
CASES = 48
ROUND_SIZE = 8
ROUNDS = 3
WORKER_ARMS = (1, 2, 4)
OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_campaign.json")


def run_arm(workers: int) -> dict:
    times = []
    last_report = None
    for _ in range(ROUNDS):
        directory = tempfile.mkdtemp(prefix=f"bench-campaign-{workers}w-")
        try:
            config = CampaignConfig(
                dir=directory,
                seed=SEED,
                cases=CASES,
                round_size=ROUND_SIZE,
                workers=workers,
                case_deadline=120.0,
            )
            start = time.perf_counter()
            last_report = CampaignDriver(config).run()
            times.append(round(time.perf_counter() - start, 4))
            if not last_report["completed"]:
                raise SystemExit(f"arm workers={workers} did not complete")
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    best = min(times)
    return {
        "times_s": times,
        "best_s": best,
        "cases_per_s": round(CASES / best, 2),
        "executions": last_report["stats"]["executions"],
        "checks": last_report["stats"]["checks"],
        "skipped": last_report["stats"]["skipped"],
        "corpus_size": last_report["corpus_size"],
        "bugs": last_report["bugs"],
    }


def main() -> None:
    arms = {}
    for workers in WORKER_ARMS:
        arms[str(workers)] = run_arm(workers)
    baseline = arms[str(WORKER_ARMS[0])]["cases_per_s"]
    for arm in arms.values():
        arm["speedup_vs_1w"] = round(arm["cases_per_s"] / baseline, 2)
    result = {
        "benchmark": "campaign throughput: cases/sec across worker pool",
        "workload": {
            "description": (
                "fixed-seed campaign, all oracles (cross-check, "
                "duplicate-sensitivity, join-identity), corpus "
                "evolution and per-round atomic checkpointing included"
            ),
            "seed": SEED,
            "cases": CASES,
            "round_size": ROUND_SIZE,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "arms": arms,
    }
    with open(OUT_PATH, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    for workers, arm in arms.items():
        print(
            f"workers={workers}: best {arm['best_s']:.3f}s, "
            f"{arm['cases_per_s']} cases/s "
            f"({arm['speedup_vs_1w']}x vs 1 worker)"
        )
    print(f"wrote {os.path.normpath(OUT_PATH)}")


if __name__ == "__main__":
    main()
