"""Section VI-C.1 — comparison against the short-paper algorithm [14].

Paper reference: on the Table I queries *without* foreign keys, the [14]
baseline took 0.20-0.34 s and "was not always able to kill all
non-equivalent mutants, even without foreign keys"; the constraint-based
algorithm took 0.040-0.790 s, growing with join count, and killed every
non-equivalent mutant.  The shape to reproduce: the baseline's time is
flat in query size while XData's grows; XData's kill rate dominates.

Run:  pytest benchmarks/bench_baseline.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.baseline import ShortPaperGenerator
from repro.core import XDataGenerator
from repro.datasets import (
    UNIVERSITY_QUERIES,
    schema_with_fks,
    university_sample_database,
)
from repro.mutation import enumerate_mutants
from repro.testing import evaluate_suite

from _tables import add_row

CAPTION = (
    "SECTION VI-C.1: CURRENT ALGORITHM vs SHORT-PAPER BASELINE [14] (no FKs)"
)
COLUMNS = [
    "Query", "#Joins", "Algorithm", "#Datasets", "#MutantsKilled", "Time (s)",
]

NAMES = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]

_schema = schema_with_fks([])
_sample = university_sample_database(_schema)


def _evaluate(suite_databases, analyzed):
    space = enumerate_mutants(analyzed)
    report = evaluate_suite(space, suite_databases, stop_at_first_kill=True)
    return report


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("algorithm", ["xdata", "baseline-14"])
def test_baseline_comparison(benchmark, name, algorithm):
    info = UNIVERSITY_QUERIES[name]

    if algorithm == "xdata":
        def generate():
            return XDataGenerator(_schema).generate(info["sql"])
    else:
        def generate():
            return ShortPaperGenerator(_schema, _sample).generate(info["sql"])

    suite = benchmark.pedantic(generate, rounds=3, iterations=1)
    report = _evaluate(suite.databases, suite.analyzed)
    datasets = (
        suite.non_original_count()
        if algorithm == "xdata"
        else len(suite.datasets) - 1
    )
    benchmark.extra_info["killed"] = report.killed
    add_row(
        "baseline",
        CAPTION,
        COLUMNS,
        {
            "Query": name.lstrip("Q"),
            "#Joins": info["joins"],
            "Algorithm": algorithm,
            "#Datasets": datasets,
            "#MutantsKilled": f"{report.killed} (of {report.total})",
            "Time (s)": f"{benchmark.stats.stats.mean:.3f}",
        },
    )
