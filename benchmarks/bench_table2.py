"""Table II — queries with selections and aggregations.

Paper reference (Table II): six queries mixing selections, aggregations
and joins (join queries carry exactly one foreign key).  Aggregation
coupled with joins is the case where solving without unfolding degrades
the most (the paper saw >50x there).

Run:  pytest benchmarks/bench_table2.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core import GenConfig, XDataGenerator
from repro.datasets import UNIVERSITY_QUERIES, schema_with_fks
from repro.mutation import enumerate_mutants
from repro.testing import evaluate_suite

from _tables import add_row

CAPTION = "TABLE II: RESULTS FOR QUERIES WITH SELECTION/AGGREGATION"
COLUMNS = [
    "Query", "#Joins", "#Selections", "#Aggregations", "#Datasets",
    "#MutantsKilled", "Time w/o unfolding (s)", "Time w/ unfolding (s)",
]

NAMES = ["Q7", "Q8", "Q9", "Q10", "Q11", "Q12"]

_kill_cache: dict[str, dict] = {}
_row_store: dict[str, dict] = {}


def _kill_stats(name: str) -> dict:
    if name not in _kill_cache:
        info = UNIVERSITY_QUERIES[name]
        schema = schema_with_fks(info["fk_rows"][0])
        suite = XDataGenerator(schema).generate(info["sql"])
        space = enumerate_mutants(suite.analyzed)
        report = evaluate_suite(
            space, suite.databases, stop_at_first_kill=True
        )
        _kill_cache[name] = {
            "datasets": suite.non_original_count(),
            "killed": report.killed,
            "mutants": report.total,
        }
    return _kill_cache[name]


@pytest.mark.parametrize(
    "unfold", [True, False], ids=["with-unfolding", "without-unfolding"]
)
@pytest.mark.parametrize("name", NAMES)
def test_table2(benchmark, name, unfold):
    info = UNIVERSITY_QUERIES[name]
    schema = schema_with_fks(info["fk_rows"][0])
    config = GenConfig(unfold=unfold)

    def generate():
        return XDataGenerator(schema, config).generate(info["sql"])

    suite = benchmark.pedantic(generate, rounds=3, iterations=1)
    stats = _kill_stats(name)
    assert suite.non_original_count() == stats["datasets"]
    benchmark.extra_info.update(stats)

    mean = benchmark.stats.stats.mean
    row = _row_store.setdefault(
        name,
        {
            "Query": name.lstrip("Q"),
            "#Joins": info["joins"],
            "#Selections": info.get("selections", 0),
            "#Aggregations": info.get("aggregations", 0),
            "#Datasets": stats["datasets"],
            "#MutantsKilled": f"{stats['killed']} (of {stats['mutants']})",
        },
    )
    column = "Time w/ unfolding (s)" if unfold else "Time w/o unfolding (s)"
    row[column] = f"{mean:.3f}"
    if all(c in row for c in COLUMNS):
        add_row("table2", CAPTION, COLUMNS, row)
