"""Benchmark session hooks: print and persist the assembled paper tables."""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import _tables  # noqa: E402


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _tables.TABLES:
        return
    out_dir = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out_dir, exist_ok=True)
    for name in sorted(_tables.TABLES):
        text = _tables.format_table(name)
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
        with open(os.path.join(out_dir, f"{name}.txt"), "w") as handle:
            handle.write(text + "\n")
