"""Backend benchmark: engine vs SQLite kill-check wall-clock.

Measures the full differential kill check — load every dataset, execute
the original plan and every mutant, compare result signatures — for the
Table I/II university workload on three arms:

* **engine** — the in-process engine (the default path);
* **sqlite** — every plan rendered to SQL and run on the stdlib
  ``sqlite3`` module (``PRAGMA foreign_keys=ON``, plans loaded once per
  dataset through the backend handle cache);
* **cross-check** — both at once: every execution shadowed on the other
  backend and the signatures compared (the differential-oracle mode the
  conformance harness runs in).

All arms must produce identical kill matrices; the benchmark fails
loudly if they do not.  Results are written to ``BENCH_backends.json``
at the repository root.

Run:  PYTHONPATH=src python benchmarks/bench_backends.py
"""

from __future__ import annotations

import json
import os
import platform
import sqlite3
import time

from repro.backends import SqliteBackend
from repro.core.generator import XDataGenerator
from repro.datasets.university import UNIVERSITY_QUERIES, university_schema
from repro.mutation.space import enumerate_mutants
from repro.testing.killcheck import evaluate_suite

ROUNDS = 5
OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_backends.json")


def build_workload():
    """Generated suite + mutation space per university query."""
    schema = university_schema()
    jobs = []
    for name, info in UNIVERSITY_QUERIES.items():
        suite = XDataGenerator(schema).generate(info["sql"])
        space = enumerate_mutants(suite.analyzed, include_full_outer=True)
        jobs.append((name, space, suite.databases))
    return jobs


def kill_matrix(jobs, **kwargs):
    return [
        [outcome.killed_by for outcome in
         evaluate_suite(space, databases, **kwargs).outcomes]
        for _, space, databases in jobs
    ]


ARMS = {
    "engine": {"backend": None},
    "sqlite": {"backend": "sqlite"},
    "cross-check": {"backend": None, "cross_check": True},
}


def main() -> None:
    jobs = build_workload()
    mutants = sum(len(space.mutants) for _, space, _ in jobs)
    datasets = sum(len(dbs) for _, _, dbs in jobs)

    matrices = {name: kill_matrix(jobs, **kwargs)
                for name, kwargs in ARMS.items()}
    reference = matrices["engine"]
    identical = all(m == reference for m in matrices.values())
    if not identical:
        raise SystemExit("kill matrices differ across backends!")

    times = {name: [] for name in ARMS}
    for _ in range(ROUNDS):
        for name, kwargs in ARMS.items():
            start = time.perf_counter()
            kill_matrix(jobs, **kwargs)
            times[name].append(round(time.perf_counter() - start, 4))

    engine_best = min(times["engine"])
    result = {
        "benchmark": "kill-check execution: engine vs sqlite vs cross-check",
        "workload": {
            "description": (
                "Table I/II university queries, full mutation space "
                "(full outer included), generated suites"
            ),
            "queries": len(jobs),
            "mutants": mutants,
            "datasets": datasets,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "sqlite": sqlite3.sqlite_version,
        },
        "arms": {
            name: {
                "times_s": times[name],
                "best_s": min(times[name]),
                "vs_engine": round(min(times[name]) / engine_best, 2),
            }
            for name in ARMS
        },
        "kill_matrices_identical": identical,
    }
    with open(OUT_PATH, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    for name in ARMS:
        print(f"{name:12s} best {min(times[name]):.3f}s "
              f"({result['arms'][name]['vs_engine']}x engine)")
    print(f"wrote {os.path.normpath(OUT_PATH)}")


if __name__ == "__main__":
    main()
