"""Section VI-C.3 — effect of input-database constraints.

Paper reference: for the 4-relation no-FK join query (Q4 of Table I),
adding constraints forcing values from an input database increased the
with-unfolding generation time from 0.279 s to 0.652 s with 5 tuples per
relation and 1.124 s with 9 tuples per relation.  The shape: time grows
with input-database size; correctness (dataset counts) is unchanged.

Run:  pytest benchmarks/bench_input_db.py --benchmark-only
"""

from __future__ import annotations

import random

import pytest

from repro.core import GenConfig, XDataGenerator
from repro.datasets import UNIVERSITY_QUERIES, schema_with_fks
from repro.testing import random_database

from _tables import add_row

CAPTION = "SECTION VI-C.3: USE OF INPUT DATABASE (Q4, no FKs, with unfolding)"
COLUMNS = ["Input DB size (tuples/relation)", "#Datasets", "Time (s)"]

_schema = schema_with_fks([])
_info = UNIVERSITY_QUERIES["Q4"]


def _input_db(rows: int):
    if rows == 0:
        return None
    return random_database(
        _schema, random.Random(42), rows_per_table=rows, value_range=50
    )


@pytest.mark.parametrize("rows", [0, 5, 9], ids=["none", "5-tuples", "9-tuples"])
def test_input_database(benchmark, rows):
    config = GenConfig(input_db=_input_db(rows))

    def generate():
        return XDataGenerator(_schema, config).generate(_info["sql"])

    suite = benchmark.pedantic(generate, rounds=3, iterations=1)
    add_row(
        "input_db",
        CAPTION,
        COLUMNS,
        {
            "Input DB size (tuples/relation)": rows if rows else "no input DB",
            "#Datasets": suite.non_original_count(),
            "Time (s)": f"{benchmark.stats.stats.mean:.3f}",
        },
    )
