"""Kill-check benchmark: batched subplan cache vs full re-execution.

Measures the engine kill check — execute the original plan and every
mutant over every dataset, compare result signatures — for the Table
I/II university workload on two arms:

* **cached** — the default batched path (DESIGN.md §5g): mutants walk
  each dataset in fingerprint-sorted order over a shared
  :class:`~repro.engine.subplan.SubplanCache`, with row-count
  short-circuiting of the signature comparison;
* **uncached** — the ablation arm (``KillCheckConfig.uncached()``, the
  seed's behaviour): every mutant tree re-executed from scratch, full
  bag canonicalisation on every comparison.

Both arms must produce byte-identical kill matrices; the benchmark
fails loudly if they do not (``kill_matrices_identical`` is asserted,
not just recorded).  Each job's datasets include the bundled sample
instance alongside the generated suite so the join inputs span the
workload's realistic row counts, not only the minimal generated ones.

Results are written to ``BENCH_killcheck.json`` at the repository root,
including per-arm times, mutant-executions-per-second throughput, the
cached arm's cache traffic, and the speedup ratio.

Run:  PYTHONPATH=src python benchmarks/bench_killcheck.py [--quick]

``--quick`` (the CI smoke mode) runs fewer rounds; the identity
assertion and the JSON artefact are the same.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

from repro.core.generator import XDataGenerator
from repro.datasets.university import (
    UNIVERSITY_QUERIES,
    university_sample_database,
    university_schema,
)
from repro.mutation.space import enumerate_mutants
from repro.testing.killcheck import KillCheckConfig, evaluate_suite

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_killcheck.json")

ARMS = {
    "cached": KillCheckConfig(),
    "uncached": KillCheckConfig.uncached(),
}


def build_workload():
    """Generated suite + sample instance + mutation space per query."""
    schema = university_schema()
    sample = university_sample_database(schema)
    jobs = []
    for name, info in UNIVERSITY_QUERIES.items():
        suite = XDataGenerator(schema).generate(info["sql"])
        space = enumerate_mutants(suite.analyzed, include_full_outer=True)
        jobs.append((name, space, suite.databases + [sample]))
    return jobs


def run_arm(jobs, config):
    """(kill matrix, aggregated cache stats) for one arm over the workload."""
    matrix = []
    stats = {"hits": 0, "misses": 0, "bytes": 0}
    for _, space, databases in jobs:
        report = evaluate_suite(space, databases, config=config)
        matrix.append([outcome.killed_by for outcome in report.outcomes])
        if report.cache_stats is not None:
            for key in ("hits", "misses", "bytes"):
                stats[key] += report.cache_stats[key]
    total = stats["hits"] + stats["misses"]
    stats["hit_rate"] = round(stats["hits"] / total, 4) if total else 0.0
    return matrix, stats


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: fewer timing rounds, same assertions",
    )
    args = parser.parse_args()
    rounds = 2 if args.quick else 5

    jobs = build_workload()
    mutants = sum(len(space.mutants) for _, space, _ in jobs)
    datasets = sum(len(dbs) for _, _, dbs in jobs)
    executions = sum(
        (len(space.mutants) + 1) * len(dbs) for _, space, dbs in jobs
    )

    matrices = {}
    cache_stats = {}
    for name, config in ARMS.items():
        matrices[name], cache_stats[name] = run_arm(jobs, config)
    identical = matrices["cached"] == matrices["uncached"]
    if not identical:
        raise SystemExit("kill matrices differ between cached and uncached!")

    times = {name: [] for name in ARMS}
    for _ in range(rounds):
        for name, config in ARMS.items():
            start = time.perf_counter()
            run_arm(jobs, config)
            times[name].append(round(time.perf_counter() - start, 4))

    cached_best = min(times["cached"])
    uncached_best = min(times["uncached"])
    speedup = round(uncached_best / cached_best, 2)
    result = {
        "benchmark": "kill-check throughput: batched subplan cache vs uncached",
        "quick": args.quick,
        "workload": {
            "description": (
                "Table I/II university queries, full mutation space "
                "(full outer included), generated suites + sample instance"
            ),
            "queries": len(jobs),
            "mutants": mutants,
            "datasets": datasets,
            "executions_per_round": executions,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "arms": {
            name: {
                "times_s": times[name],
                "best_s": min(times[name]),
                "throughput_exec_per_s": round(executions / min(times[name]), 1),
            }
            for name in ARMS
        },
        "cache": cache_stats["cached"],
        "speedup": speedup,
        "kill_matrices_identical": identical,
    }
    with open(OUT_PATH, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    for name in ARMS:
        print(
            f"{name:9s} best {min(times[name]):.3f}s "
            f"({result['arms'][name]['throughput_exec_per_s']:.0f} exec/s)"
        )
    print(
        f"speedup {speedup}x, cache hit rate "
        f"{cache_stats['cached']['hit_rate']:.0%}"
    )
    print(f"wrote {os.path.normpath(OUT_PATH)}")


if __name__ == "__main__":
    main()
