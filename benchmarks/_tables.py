"""Result-row collection shared by the benchmark files."""

from __future__ import annotations

from collections import defaultdict

TABLES: dict[str, list[dict]] = defaultdict(list)
COLUMNS: dict[str, list[str]] = {}
CAPTIONS: dict[str, str] = {}


def add_row(table: str, caption: str, columns: list[str], row: dict) -> None:
    """Record one result row for a named output table."""
    TABLES[table].append(row)
    COLUMNS[table] = columns
    CAPTIONS[table] = caption


def format_table(name: str) -> str:
    columns = COLUMNS[name]
    rows = TABLES[name]
    rendered = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [CAPTIONS[name]]
    lines.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)
