"""Constrained aggregation (HAVING) — the paper's named future work,
implemented here and measured like a Table II extension.

Run:  pytest benchmarks/bench_having.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core import XDataGenerator
from repro.datasets import schema_with_fks
from repro.mutation import enumerate_mutants
from repro.testing import classify_survivors, evaluate_suite

from _tables import add_row

CAPTION = "EXTENSION: CONSTRAINED AGGREGATION (HAVING) QUERIES"
COLUMNS = [
    "Query", "#Datasets", "#Mutants", "#Killed", "#Missed", "Time (s)",
]

QUERIES = {
    "sum-threshold": (
        [],
        "SELECT i.dept_name, SUM(i.salary) FROM instructor i "
        "GROUP BY i.dept_name HAVING SUM(i.salary) > 50",
    ),
    "count-filter": (
        [],
        "SELECT i.dept_name, COUNT(i.id) FROM instructor i "
        "GROUP BY i.dept_name HAVING COUNT(i.id) >= 2",
    ),
    "join+having": (
        ["teaches.id"],
        "SELECT i.dept_name, SUM(i.salary) FROM instructor i, teaches t "
        "WHERE i.id = t.id GROUP BY i.dept_name HAVING SUM(i.salary) > 50",
    ),
    "min-max": (
        [],
        "SELECT c.dept_name, MAX(c.credits) FROM course c "
        "GROUP BY c.dept_name HAVING MAX(c.credits) > 3 AND MIN(c.credits) > 1",
    ),
}


@pytest.mark.parametrize("label", list(QUERIES))
def test_having(benchmark, label):
    fks, sql = QUERIES[label]
    schema = schema_with_fks(fks)

    def generate():
        return XDataGenerator(schema).generate(sql)

    suite = benchmark.pedantic(generate, rounds=3, iterations=1)
    space = enumerate_mutants(suite.analyzed)
    report = evaluate_suite(space, suite.databases)
    classification = classify_survivors(space, report.survivors, trials=12)
    assert classification.missed == [], [
        str(c.mutant) for c in classification.missed
    ]
    add_row(
        "having",
        CAPTION,
        COLUMNS,
        {
            "Query": label,
            "#Datasets": suite.non_original_count(),
            "#Mutants": report.total,
            "#Killed": report.killed,
            "#Missed": len(classification.missed),
            "Time (s)": f"{benchmark.stats.stats.mean:.3f}",
        },
    )
