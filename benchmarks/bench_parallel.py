"""Parallel + hot-path pipeline benchmark: sequential vs workers=4 vs delta.

Measures wall-clock for generating complete mutant-killing test suites
over the multi-query workload (every Table I/II university query, each
at every Table I foreign-key variant, at full mutation coverage), three
ways:

* **sequential** — the seed-equivalent pipeline: one query at a time,
  ``workers=1``, with every hot-path cache disabled
  (``hot_path_caching=False``, ``SearchConfig(hot_path=False)``), i.e.
  the rebuild-everything-per-spec behaviour this PR started from;
* **workers=4** — the optimised pipeline with delta solving pinned
  *off* (``SearchConfig(delta_solve=False)``): hot-path caching on, the
  whole workload dispatched as one batch through the shared process
  pool with ``workers=4``.  The pool is sized to the machine
  (``min(workers, cpu_count)``); when only one CPU is available the
  batch legitimately runs in-process, so the recorded speedup on such
  hosts comes from the hot-path work alone and is a *lower bound* for
  multi-core hardware.
* **delta** — the same optimised pipeline with delta solving on (the
  default): each query's shared PK/FK/domain constraint system is
  compiled once into a skeleton (DESIGN.md §5j), sibling kill groups
  solve as incremental deltas against it, and the process-level
  skeleton/declaration stores carry the compiled state across repeat
  rounds of the same request — the repeat-request shape a generation
  service sees.

All arms must produce byte-identical datasets; the benchmark fails
loudly if they do not.  Results are written to ``BENCH_parallel.json``
at the repository root.

Run:  PYTHONPATH=src python benchmarks/bench_parallel.py
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time

from repro.core.generator import GenConfig, XDataGenerator
from repro.core.parallel import effective_workers, generate_jobs_parallel
from repro.datasets.university import UNIVERSITY_QUERIES, schema_with_fks
from repro.solver.search import SearchConfig

ROUNDS = 7
WORKERS = 4
OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_parallel.json")


def build_jobs():
    """The multi-query workload: (schema, sql) per query x FK variant."""
    schema_cache: dict[tuple, object] = {}
    jobs = []
    for name, info in UNIVERSITY_QUERIES.items():
        for fk_rows in info["fk_rows"]:
            key = tuple(fk_rows)
            if key not in schema_cache:
                schema_cache[key] = schema_with_fks(fk_rows)
            jobs.append((schema_cache[key], info["sql"]))
    return jobs, len(schema_cache)


def sequential_config() -> GenConfig:
    return GenConfig(
        include_join_condition_datasets=True,
        hot_path_caching=False,
        solver=SearchConfig(hot_path=False),
        workers=1,
    )


def parallel_config() -> GenConfig:
    # delta_solve pinned off so the delta arm's speedup is attributable
    # to the skeleton pipeline alone, not to the rest of the hot path.
    return GenConfig(
        include_join_condition_datasets=True,
        workers=WORKERS,
        solver=SearchConfig(delta_solve=False),
    )


def delta_config() -> GenConfig:
    return GenConfig(include_join_condition_datasets=True, workers=WORKERS)


def scripts_of(suites) -> list[str]:
    return [
        dataset.db.pretty(only_nonempty=False)
        for suite in suites
        for dataset in suite.datasets
    ]


def run_sequential(jobs, config):
    start = time.perf_counter()
    suites = [
        XDataGenerator(schema, config).generate(sql) for schema, sql in jobs
    ]
    return time.perf_counter() - start, suites


def run_parallel(jobs, config):
    start = time.perf_counter()
    suites = generate_jobs_parallel(jobs, config, config.workers)
    return time.perf_counter() - start, suites


def stage_totals(suites) -> dict[str, float]:
    totals: dict[str, float] = {}
    for suite in suites:
        for stage, spent in suite.stage_times.items():
            totals[stage] = totals.get(stage, 0.0) + spent
    return {stage: round(spent, 4) for stage, spent in sorted(totals.items())}


def skeleton_totals(suites) -> dict[str, int]:
    totals: dict[str, int] = {}
    for suite in suites:
        for key, value in suite.health.skeleton_cache.items():
            if key == "hit_rate":
                continue
            totals[key] = totals.get(key, 0) + value
    return totals


def main() -> None:
    jobs, schema_count = build_jobs()
    seq_cfg = sequential_config()
    par_cfg = parallel_config()
    delta_cfg = delta_config()

    # Warm-up round per arm: imports, schema templates, the process
    # pool, and (for the delta arm) the process-level skeleton and
    # declaration stores.
    _, par_suites = run_parallel(jobs, par_cfg)
    _, delta_suites = run_parallel(jobs, delta_cfg)
    _, seq_suites = run_sequential(jobs, seq_cfg)

    par_scripts = scripts_of(par_suites)
    delta_scripts = scripts_of(delta_suites)
    seq_scripts = scripts_of(seq_suites)
    identical = par_scripts == seq_scripts == delta_scripts
    digest = hashlib.sha256(
        "\n".join(seq_scripts).encode()
    ).hexdigest()[:16]

    seq_times, par_times, delta_times = [], [], []
    seq_stages = par_stages = delta_stages = None
    delta_skeleton = None
    for _ in range(ROUNDS):
        elapsed, suites = run_parallel(jobs, par_cfg)
        par_times.append(elapsed)
        par_stages = stage_totals(suites)
        elapsed, suites = run_parallel(jobs, delta_cfg)
        delta_times.append(elapsed)
        delta_stages = stage_totals(suites)
        delta_skeleton = skeleton_totals(suites)
        elapsed, suites = run_sequential(jobs, seq_cfg)
        seq_times.append(elapsed)
        seq_stages = stage_totals(suites)

    seq_best, par_best = min(seq_times), min(par_times)
    delta_best = min(delta_times)
    result = {
        "benchmark": "parallel test-suite generation + solver hot-path",
        "workload": {
            "description": (
                "Table I/II university queries x FK variants, full "
                "mutation coverage (join-condition datasets included)"
            ),
            "queries": len(UNIVERSITY_QUERIES),
            "jobs": len(jobs),
            "schemas": schema_count,
            "datasets": len(seq_scripts),
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "arms": {
            "sequential": {
                "description": "seed-equivalent: workers=1, all hot-path caching disabled",
                "config": {
                    "workers": 1,
                    "hot_path_caching": False,
                    "solver_hot_path": False,
                },
                "times_s": [round(t, 4) for t in seq_times],
                "best_s": round(seq_best, 4),
                "stage_totals_s": seq_stages,
            },
            "workers=4": {
                "description": "optimised pipeline: hot-path caching on, batched through the shared pool, delta solving pinned off",
                "config": {
                    "workers": WORKERS,
                    "effective_workers": effective_workers(WORKERS, len(jobs)),
                    "hot_path_caching": True,
                    "solver_hot_path": True,
                    "delta_solve": False,
                },
                "times_s": [round(t, 4) for t in par_times],
                "best_s": round(par_best, 4),
                "stage_totals_s": par_stages,
            },
            "delta": {
                "description": "optimised pipeline + compile-once/delta-solve skeletons with warm process-level stores",
                "config": {
                    "workers": WORKERS,
                    "effective_workers": effective_workers(WORKERS, len(jobs)),
                    "hot_path_caching": True,
                    "solver_hot_path": True,
                    "delta_solve": True,
                },
                "times_s": [round(t, 4) for t in delta_times],
                "best_s": round(delta_best, 4),
                "stage_totals_s": delta_stages,
                "skeleton_cache": delta_skeleton,
                "speedup_vs_optimised": round(par_best / delta_best, 3),
            },
        },
        "byte_identical_datasets": identical,
        "datasets_sha256": digest,
        "speedup": round(seq_best / par_best, 3),
        "speedup_delta": round(seq_best / delta_best, 3),
    }

    out = os.path.abspath(OUT_PATH)
    with open(out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    print(json.dumps(result, indent=2))
    if not identical:
        raise SystemExit("FAIL: dataset mismatch between arms")
    print(f"\nwrote {out}: speedup {result['speedup']}x "
          f"({seq_best:.3f}s sequential vs {par_best:.3f}s workers={WORKERS}), "
          f"delta {result['arms']['delta']['speedup_vs_optimised']}x vs "
          f"optimised ({delta_best:.3f}s)")


if __name__ == "__main__":
    main()
