"""Section VI-C.1 — completeness verification of surviving mutants.

Paper reference: "For queries containing 2-4 relations, we manually
verified that every mutation that was not killed was in fact an
equivalent mutation" (sampled for 5+ relations).  This bench automates
the verification with randomized differential testing and reports, per
Table I row, how many survivors there are and that none is a missed
(non-equivalent) mutant.

Run:  pytest benchmarks/bench_completeness.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core import XDataGenerator
from repro.datasets import UNIVERSITY_QUERIES, schema_with_fks
from repro.mutation import enumerate_mutants
from repro.testing import classify_survivors, evaluate_suite

from _tables import add_row

CAPTION = "SECTION VI-C.1: SURVIVOR VERIFICATION (all survivors equivalent?)"
COLUMNS = [
    "Query", "#FK", "#Mutants", "#Killed", "#Survivors", "#Missed",
    "Verify time (s)",
]

ROWS = [
    (name, fks)
    for name in ["Q1", "Q2", "Q3", "Q4"]
    for fks in UNIVERSITY_QUERIES[name]["fk_rows"]
]


@pytest.mark.parametrize(
    "name,fks", ROWS, ids=[f"{n}-fk{len(f)}" for n, f in ROWS]
)
def test_survivors_all_equivalent(benchmark, name, fks):
    info = UNIVERSITY_QUERIES[name]
    schema = schema_with_fks(fks)
    suite = XDataGenerator(schema).generate(info["sql"])
    space = enumerate_mutants(suite.analyzed)
    report = evaluate_suite(space, suite.databases, stop_at_first_kill=True)

    def verify():
        return classify_survivors(space, report.survivors, trials=10)

    classification = benchmark.pedantic(verify, rounds=1, iterations=1)
    assert classification.missed == []
    add_row(
        "completeness",
        CAPTION,
        COLUMNS,
        {
            "Query": name.lstrip("Q"),
            "#FK": len(fks),
            "#Mutants": report.total,
            "#Killed": report.killed,
            "#Survivors": len(report.survivors),
            "#Missed": len(classification.missed),
            "Verify time (s)": f"{benchmark.stats.stats.mean:.3f}",
        },
    )
