"""Section VI-C.1 (text) — queries mixing inner and outer joins.

Paper reference: "We also tested our algorithm for queries that contained
a mix of inner and outer (left and right) joins ... The results obtained
were similar to those obtained for a query containing only inner joins."
The bench generates suites for mixed-join variants of Q1-Q3, reports the
kill rates, and verifies that no non-equivalent mutant survives.

Run:  pytest benchmarks/bench_outerjoin.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core import XDataGenerator
from repro.datasets import schema_with_fks
from repro.mutation import enumerate_mutants
from repro.testing import classify_survivors, evaluate_suite

from _tables import add_row

CAPTION = "SECTION VI-C.1: MIXED INNER/OUTER JOIN QUERIES (no FKs)"
COLUMNS = [
    "Query", "#Datasets", "#MutantsKilled", "Survivors equivalent?", "Time (s)",
]

QUERIES = {
    "left-outer": (
        "SELECT i.id, t.course_id FROM instructor i "
        "LEFT OUTER JOIN teaches t ON i.id = t.id"
    ),
    "right-outer": (
        "SELECT t.id, i.id FROM teaches t "
        "RIGHT OUTER JOIN instructor i ON i.id = t.id"
    ),
    "full-outer": (
        "SELECT i.id, t.id FROM instructor i "
        "FULL OUTER JOIN teaches t ON i.id = t.id"
    ),
    "mixed-3way": (
        "SELECT i.id, t.course_id, c.course_id FROM instructor i "
        "LEFT OUTER JOIN teaches t ON i.id = t.id "
        "JOIN course c ON t.course_id = c.course_id"
    ),
}

_schema = schema_with_fks([])


@pytest.mark.parametrize("label", list(QUERIES))
def test_outer_join_queries(benchmark, label):
    sql = QUERIES[label]

    def generate():
        return XDataGenerator(_schema).generate(sql)

    suite = benchmark.pedantic(generate, rounds=3, iterations=1)
    space = enumerate_mutants(suite.analyzed, include_full_outer=True)
    report = evaluate_suite(space, suite.databases)
    classification = classify_survivors(space, report.survivors, trials=15)
    assert classification.missed == [], "non-equivalent mutant survived"
    add_row(
        "outerjoin",
        CAPTION,
        COLUMNS,
        {
            "Query": label,
            "#Datasets": suite.non_original_count(),
            "#MutantsKilled": f"{report.killed} (of {report.total})",
            "Survivors equivalent?": "yes (verified)",
            "Time (s)": f"{benchmark.stats.stats.mean:.3f}",
        },
    )
