"""Service benchmark: a classroom burst against the HTTP front end.

Simulates the flagship grading scenario (Chandra et al., PAPERS.md): a
course submits hundreds of near-identical queries — every student
spelling the same handful of assignments with their own identifier
case, whitespace and line breaks — and the service must turn the
duplication into cache hits instead of redundant solves.

Three arms:

* **cold** — each *distinct* assignment solved once, no cache; the
  reference payloads and the per-solve baseline time;
* **burst** — the full submission list POSTed to a real
  :class:`repro.service.Service` on loopback, results fetched over
  HTTP;
* **reconcile** — the server's ``/metrics`` exposition is parsed and
  its ``xdata_service_cache_{hits,misses}_total`` counters are checked
  against the burst's own counts.

Hard assertions (the benchmark fails, not just records):

* every burst response is **byte-identical** to the cold payload of its
  fingerprint;
* the cache hit rate is ≥ 0.8 (the duplication level of a classroom
  burst);
* the ``/metrics`` counters equal the benchmark's observed hits/misses.

Results are written to ``BENCH_service.json`` at the repository root.

Run:  PYTHONPATH=src python benchmarks/bench_service.py [--quick]

``--quick`` (the CI smoke mode) shrinks the burst; assertions and the
JSON artefact are the same.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import re
import time
import urllib.request

from repro.api import Session
from repro.datasets.university import UNIVERSITY_QUERIES, university_schema
from repro.schema.ddl import to_ddl
from repro.service import Service, fingerprint
from repro.service.cache import canonical_bytes
from repro.service.jobs import build_payload

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_service.json")

#: Assignments in the burst: Table I/II university queries, small
#: enough that the benchmark's cold arm stays in CI-smoke budget.
ASSIGNMENTS = ("Q1", "Q7", "Q8", "Q9", "Q10", "Q11")


def respell(sql: str, rng: random.Random) -> str:
    """One student's spelling of ``sql``: case + whitespace noise.

    Perturbs only outside string literals; identifier and keyword case
    plus spacing are exactly what the fingerprint canonicalizes away.
    """
    segments = sql.split("'")
    for index in range(0, len(segments), 2):  # even segments: outside quotes
        words = re.split(r"(\s+)", segments[index])
        out = []
        for word in words:
            if word.isspace():
                out.append(" " * rng.randint(1, 3) if rng.random() < 0.4 else word)
            elif word and rng.random() < 0.5:
                out.append(word.upper() if rng.random() < 0.5 else word.lower())
            else:
                out.append(word)
        segments[index] = "".join(out)
    return "'".join(segments)


def build_burst(duplicates: int, seed: int = 20260808):
    """The shuffled submission list: one spelling per (query, student)."""
    rng = random.Random(seed)
    submissions = []
    for name in ASSIGNMENTS:
        sql = UNIVERSITY_QUERIES[name]["sql"]
        submissions.append((name, sql))  # the canonical-ish original
        for _ in range(duplicates - 1):
            submissions.append((name, respell(sql, rng)))
    rng.shuffle(submissions)
    return submissions


def cold_solves(ddl: str):
    """Reference payload per assignment, solved without any cache.

    Solves over ``parse_ddl(ddl)`` — the exact schema the server
    reconstructs from the POSTed text — so byte-comparison against the
    HTTP responses is apples to apples.
    """
    from repro.schema.ddl import parse_ddl

    payloads = {}
    elapsed = {}
    for name in ASSIGNMENTS:
        sql = UNIVERSITY_QUERIES[name]["sql"]
        session = Session(parse_ddl(ddl))  # fresh per query: no cache
        start = time.perf_counter()
        run = session.generate(sql)
        elapsed[name] = time.perf_counter() - start
        payloads[fingerprint(ddl, sql)] = canonical_bytes(build_payload(run))
    return payloads, elapsed


def post_job(url: str, body: dict) -> dict:
    request = urllib.request.Request(
        url + "/v1/jobs",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def wait_done(url: str, job_id: str, timeout_s: float = 600.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        with urllib.request.urlopen(f"{url}/v1/jobs/{job_id}") as response:
            status = json.loads(response.read())
        if status["state"] in ("done", "failed", "cancelled"):
            return status
        time.sleep(0.01)
    raise TimeoutError(job_id)


def fetch_result(url: str, job_id: str) -> tuple[bytes, str]:
    with urllib.request.urlopen(f"{url}/v1/jobs/{job_id}/result") as response:
        return response.read(), response.headers["X-Xdata-Cache"]


def scrape_counters(url: str) -> dict[str, float]:
    with urllib.request.urlopen(url + "/metrics") as response:
        text = response.read().decode()
    counters = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.partition(" ")
        try:
            counters[name] = float(value)
        except ValueError:
            pass
    return counters


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: smaller burst, same assertions",
    )
    parser.add_argument(
        "--workers", type=int, default=min(4, os.cpu_count() or 1),
        help="service worker threads",
    )
    args = parser.parse_args()
    duplicates = 10 if args.quick else 50

    ddl = to_ddl(university_schema())
    burst = build_burst(duplicates)
    distinct = len(ASSIGNMENTS)
    expected_hit_rate = (len(burst) - distinct) / len(burst)

    print(f"cold arm: {distinct} distinct solves ...")
    cold_payloads, cold_elapsed = cold_solves(ddl)
    cold_total = sum(cold_elapsed.values())

    print(
        f"burst arm: {len(burst)} submissions "
        f"({distinct} distinct x {duplicates}) over HTTP ..."
    )
    with Service(port=0, workers=args.workers) as service:
        url = service.url
        start = time.perf_counter()
        submitted = [
            (name, post_job(url, {"schema": ddl, "query": sql}))
            for name, sql in burst
        ]
        for _, job in submitted:
            status = wait_done(url, job["id"])
            assert status["state"] == "done", status
        burst_elapsed = time.perf_counter() - start

        hits = misses = 0
        mismatches = 0
        for _, job in submitted:
            body, cache_header = fetch_result(url, job["id"])
            if cache_header == "hit":
                hits += 1
            else:
                misses += 1
            if body != cold_payloads[job["fingerprint"]]:
                mismatches += 1
        counters = scrape_counters(url)

    if mismatches:
        raise SystemExit(
            f"{mismatches} burst responses differ from their cold payloads!"
        )
    hit_rate = hits / len(burst)
    if hit_rate < 0.8:
        raise SystemExit(f"cache hit rate {hit_rate:.0%} below the 80% bar")
    metrics_hits = counters.get("xdata_service_cache_hits_total")
    metrics_misses = counters.get("xdata_service_cache_misses_total")
    if metrics_hits != hits or metrics_misses != misses:
        raise SystemExit(
            f"/metrics counters (hits={metrics_hits}, misses={metrics_misses})"
            f" disagree with the benchmark (hits={hits}, misses={misses})"
        )

    per_submission_cold = cold_total / distinct
    naive_total = per_submission_cold * len(burst)
    result = {
        "benchmark": "generation-as-a-service: classroom burst over HTTP",
        "quick": args.quick,
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "workload": {
            "description": (
                "university assignments, each submitted by many students "
                "with case/whitespace respellings"
            ),
            "assignments": distinct,
            "submissions": len(burst),
            "duplicates_per_assignment": duplicates,
            "expected_hit_rate": round(expected_hit_rate, 4),
        },
        "cold": {
            "total_s": round(cold_total, 4),
            "per_solve_s": {k: round(v, 4) for k, v in cold_elapsed.items()},
        },
        "burst": {
            "total_s": round(burst_elapsed, 4),
            "throughput_submissions_per_s": round(
                len(burst) / burst_elapsed, 1
            ),
            "workers": args.workers,
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hit_rate, 4),
            "metrics_counters_reconcile": True,
        },
        "byte_identical_responses": True,
        "speedup_vs_no_cache": round(naive_total / burst_elapsed, 2),
    }
    with open(OUT_PATH, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(
        f"burst {burst_elapsed:.2f}s "
        f"({result['burst']['throughput_submissions_per_s']} submissions/s), "
        f"hit rate {hit_rate:.0%}, byte-identical, metrics reconcile"
    )
    print(
        f"speedup vs solving every submission: "
        f"{result['speedup_vs_no_cache']}x"
    )
    print(f"wrote {os.path.normpath(OUT_PATH)}")


if __name__ == "__main__":
    main()
