"""Ablation study: what each design choice of the paper contributes.

Not a paper table — DESIGN.md calls out three load-bearing mechanisms and
this bench quantifies each by disabling it:

* **Equivalence classes** (Section IV-B, Fig. 2): without transitive
  merging, mutants of *reordered* join trees survive.
* **Foreign-key support tuples** (Section V-B): without the extra
  referenced tuples, nullification constraints conflict with foreign keys
  and killable groups are misreported as equivalent.
* **Group-by distinctness**: without it, aggregation masks join
  differences (two dangling tuples fall into the same group).

Each row reports mutants killed by the full generator vs. the ablated
one on a query chosen to exercise the mechanism.

Run:  pytest benchmarks/bench_ablation.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core import GenConfig, XDataGenerator
from repro.datasets import schema_with_fks
from repro.mutation import enumerate_mutants
from repro.schema.ddl import parse_ddl
from repro.testing import evaluate_suite

from _tables import add_row

# Group-by column without an enumerated domain: value rotation cannot
# separate the groups, so only the distinctness constraints can.
_GROUPED_DDL = """
CREATE TABLE account (id INT PRIMARY KEY, region INT);
CREATE TABLE payment (id INT PRIMARY KEY, account_id INT REFERENCES account(id));
"""

CAPTION = "ABLATION: CONTRIBUTION OF EACH DESIGN CHOICE (mutants killed)"
COLUMNS = ["Mechanism", "Query", "Full", "Ablated", "Lost kills"]

CASES = {
    "equivalence-classes": {
        # One 3-member class; reordered trees join teaches with prereq.
        "sql": (
            "SELECT * FROM teaches t, course c, prereq p "
            "WHERE t.course_id = c.course_id AND c.course_id = p.course_id"
        ),
        "fks": [],
        "config": GenConfig(use_equivalence_classes=False),
    },
    "fk-support-tuples": {
        # Nullifying the referencing side needs a spare referenced tuple.
        "sql": "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
        "fks": ["teaches.id"],
        "config": GenConfig(use_fk_support_slots=False),
    },
    "groupby-distinctness": {
        # Aggregation masks the dangling account without it.
        "sql": (
            "SELECT a.region, COUNT(p.id) "
            "FROM account a, payment p WHERE a.id = p.account_id "
            "GROUP BY a.region"
        ),
        "schema": parse_ddl(_GROUPED_DDL),
        "config": GenConfig(use_groupby_distinctness=False),
    },
}


def _killed(schema, sql, config):
    suite = XDataGenerator(schema, config).generate(sql)
    space = enumerate_mutants(suite.analyzed)
    report = evaluate_suite(space, suite.databases, stop_at_first_kill=True)
    return report


@pytest.mark.parametrize("mechanism", list(CASES))
def test_ablation(benchmark, mechanism):
    case = CASES[mechanism]
    schema = case.get("schema") or schema_with_fks(case["fks"])

    def run_ablated():
        return _killed(schema, case["sql"], case["config"])

    ablated = benchmark.pedantic(run_ablated, rounds=2, iterations=1)
    full = _killed(schema, case["sql"], GenConfig())
    assert full.killed >= ablated.killed
    assert full.killed > ablated.killed, (
        f"{mechanism}: ablation should lose kills"
    )
    add_row(
        "ablation",
        CAPTION,
        COLUMNS,
        {
            "Mechanism": mechanism,
            "Query": case["sql"][:46] + "...",
            "Full": f"{full.killed} (of {full.total})",
            "Ablated": f"{ablated.killed} (of {ablated.total})",
            "Lost kills": full.killed - ablated.killed,
        },
    )
