#!/usr/bin/env python3
"""Using XData with your own schema, via DDL.

Defines a small order-management schema with CREATE TABLE statements,
generates suites for a money-moving query, and demonstrates the
aggregation datasets (Algorithm 4) — three rows engineered so that every
pair of aggregate operators disagrees.

Run:  python examples/custom_schema.py
"""

import repro
from repro.testing import classify_survivors, format_kill_report

DDL = """
CREATE TABLE customer (
    cust_id   INT PRIMARY KEY,
    name      VARCHAR(40) NOT NULL,
    region    VARCHAR(20)
);
CREATE TABLE orders (
    order_id  INT PRIMARY KEY,
    cust_id   INT NOT NULL REFERENCES customer(cust_id),
    total     INT
);
CREATE TABLE payment (
    pay_id    INT PRIMARY KEY,
    order_id  INT NOT NULL REFERENCES orders(order_id),
    amount    INT
);
"""

REVENUE_BY_REGION = (
    "SELECT c.region, SUM(p.amount) "
    "FROM customer c, orders o, payment p "
    "WHERE c.cust_id = o.cust_id AND o.order_id = p.order_id "
    "GROUP BY c.region"
)

UNPAID_CHECK = (
    "SELECT o.order_id, p.pay_id "
    "FROM orders o LEFT OUTER JOIN payment p ON o.order_id = p.order_id"
)


def main():
    # The facade accepts raw DDL text directly — no parse_ddl needed.
    print("=== revenue-by-region (joins + SUM) ===")
    scored = repro.evaluate(DDL, REVENUE_BY_REGION)
    for dataset in scored.run.datasets:
        print(f"\n[{dataset.group}] {dataset.purpose}")
        print(dataset.db.pretty())
    print()
    print(format_kill_report(scored.report, show_survivors=False))
    classification = classify_survivors(scored.space, scored.survivors)
    print(f"missed mutants: {len(classification.missed)} (should be 0)")

    print("\n=== unpaid-order check (query already has an outer join) ===")
    scored = repro.evaluate(DDL, UNPAID_CHECK)
    print(format_kill_report(scored.report))
    print("(a dataset with an order that has no payment distinguishes the")
    print(" outer join from its inner-join mutant)")


if __name__ == "__main__":
    main()
