#!/usr/bin/env python3
"""A guided tour of the paper's running examples (Sections IV-V).

Reproduces, executable end to end:

* Example 1 — killing ``instructor JOIN teaches -> LEFT OUTER`` requires
  the difference to propagate through the join with course;
* Example 2 — a foreign key makes naive nullification impossible, but a
  dataset violating the selection still kills the join mutant;
* Example 3 — the mutation that is provably equivalent (the dangling
  instructor is filtered higher up), shown surviving for the right reason;
* Fig. 2 — the reordered join tree whose mutant is still killed thanks to
  attribute equivalence classes;
* the CVC3-style constraints behind one dataset (Section V-A's notation).

Run:  python examples/paper_walkthrough.py
"""

import repro
from repro import GenConfig
from repro.datasets import schema_with_fks

FIG1_QUERY = (
    "SELECT * FROM instructor i, teaches t, course c "
    "WHERE i.id = t.id AND t.course_id = c.course_id"
)


def example_1():
    print("=" * 72)
    print("Example 1: the difference must reach the root")
    schema = schema_with_fks([])
    run = repro.generate(schema, FIG1_QUERY)
    dataset = next(d for d in run.datasets if "nullify i.id" in d.target)
    print(dataset.db.pretty())
    teaches = dataset.db.relation("teaches").rows[0]
    courses = {row[0] for row in dataset.db.relation("course").rows}
    print(
        f"-> the dangling teaches tuple still matches course "
        f"{teaches[1]} in {sorted(courses)}, so the outer-join mutant's "
        f"extra row survives to the query result."
    )


def example_2():
    print("=" * 72)
    print("Example 2: foreign keys force the selection-violation route")
    schema = schema_with_fks(["teaches.id"])
    sql = (
        "SELECT * FROM instructor i, teaches t "
        "WHERE i.id = t.id AND i.dept_name = 'CS'"
    )
    run = repro.generate(schema, sql)
    violated = next(
        d for d in run.datasets if "force <" in d.target
    )
    print(violated.db.pretty())
    print(
        "-> teaches references an instructor (the FK holds) whose "
        "department fails the selection; JOIN and RIGHT OUTER JOIN now "
        "differ even though no teaches tuple can dangle."
    )


def example_3():
    print("=" * 72)
    print("Example 3: the equivalent mutation survives — correctly")
    schema = schema_with_fks([])
    scored = repro.evaluate(schema, FIG1_QUERY)
    survivors = [
        m for m in scored.survivors
        if "LEFT" in m.description and "[i]" in m.description
    ]
    for mutant in survivors:
        print(f"survivor: {mutant.description}")
    print(
        "-> an instructor with no teaches row is padded with NULL "
        "course_id, which the join with course then filters out: the "
        "mutant is semantically equivalent, and no dataset can kill it."
    )


def figure_2():
    print("=" * 72)
    print("Fig. 2: equivalence classes cover reordered join trees")
    schema = schema_with_fks([])
    sql = (
        "SELECT * FROM teaches t, course c, prereq p "
        "WHERE t.course_id = c.course_id AND c.course_id = p.course_id"
    )
    scored = repro.evaluate(schema, sql)
    space = scored.space
    reordered = [
        m for m in space.mutants
        if "[p]" in m.description and "[t]" in m.description
    ]
    report = scored.report
    print(f"join-order space contains {len(space.mutants)} mutants, "
          f"including {len(reordered)} on the (t ? p) tree the query "
          f"never wrote")
    killed = [
        o.mutant.description
        for o in report.outcomes
        if o.killed and o.mutant in reordered
    ]
    for description in killed:
        print(f"  killed: {description}")


def constraints_trace():
    print("=" * 72)
    print("Section V-A: the constraints behind one dataset, CVC3-style")
    schema = schema_with_fks(["teaches.id"])
    config = GenConfig(trace_constraints=True)
    run = repro.generate(
        schema,
        "SELECT * FROM instructor i, teaches t WHERE i.id = t.id",
        config=config,
    )
    dataset = next(d for d in run.datasets if d.group == "eqclass")
    print(dataset.purpose)
    print(dataset.constraints_cvc)


def main():
    example_1()
    example_2()
    example_3()
    figure_2()
    constraints_trace()


if __name__ == "__main__":
    main()
