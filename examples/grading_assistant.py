#!/usr/bin/env python3
"""Grading assistant: score student SQL answers against a model query.

This is the scenario that made XData a deployed tool at IIT Bombay: an
instructor writes the correct query; students submit their attempts; the
suite generated from the *correct* query is run against each submission,
and any difference in results exposes the mistake — without the grader
eyeballing the SQL.

The student mistakes below are classic single mutations: a wrong join
type, a wrong comparison operator, a wrong aggregate, a missing join
condition.  Note that the datasets were generated with no knowledge of
the submissions.

A whole course grades against one :class:`repro.Session`: the model
suite is solved once and memoized by content address, and submissions
that are mere respellings of the model answer (identifier case,
whitespace, alias names) are recognised by fingerprint before any SQL
runs.  ``repro serve`` wraps this same session behind HTTP for a
department-wide deployment.

Run:  python examples/grading_assistant.py
"""

import repro
from repro import parse_query
from repro.datasets import schema_with_fks
from repro.engine import execute_query
from repro.testing.killcheck import result_signature

CORRECT = (
    "SELECT i.name, c.title "
    "FROM instructor i, teaches t, course c "
    "WHERE i.id = t.id AND t.course_id = c.course_id AND c.credits > 3"
)

SUBMISSIONS = {
    # Alice retyped the model answer with her own casing and aliases —
    # the session's fingerprint spots the duplicate without running it.
    "alice (respelled but identical)": (
        "select I.Name, C.Title "
        "from Instructor I, Teaches T, Course C "
        "where i.id = t.id and t.course_id = c.course_id and c.credits > 3"
    ),
    # Bob used a LEFT OUTER JOIN — but the join with course above it
    # filters the null-padded rows away, so his query is *semantically
    # equivalent* to the model answer (the paper's Example 3).  A fair
    # grader must NOT penalise him, and no dataset can tell them apart.
    "bob (left outer join, but equivalent)": (
        "SELECT i.name, c.title "
        "FROM instructor i LEFT OUTER JOIN teaches t ON i.id = t.id "
        "JOIN course c ON t.course_id = c.course_id "
        "WHERE c.credits > 3"
    ),
    "carol (>= instead of >)": (
        "SELECT i.name, c.title "
        "FROM instructor i, teaches t, course c "
        "WHERE i.id = t.id AND t.course_id = c.course_id AND c.credits >= 3"
    ),
    "dave (joined the wrong columns)": (
        "SELECT i.name, c.title "
        "FROM instructor i, teaches t, course c "
        "WHERE i.id = t.id AND t.sec_id = c.course_id AND c.credits > 3"
    ),
    "eve (forgot the course join condition)": (
        "SELECT i.name, c.title "
        "FROM instructor i, teaches t, course c "
        "WHERE i.id = t.id AND c.credits > 3"
    ),
}


def main():
    schema = schema_with_fks(["teaches.id", "teaches.course_id"])
    session = repro.Session(schema)
    run = session.generate(CORRECT)
    model_fp = session.fingerprint(CORRECT)
    print(f"generated {len(run.datasets)} datasets from the model answer")
    print(f"model answer fingerprint: {model_fp[:16]}...\n")

    correct_query = parse_query(CORRECT)
    for student, sql in SUBMISSIONS.items():
        if session.fingerprint(sql) == model_fp:
            print(f"PASS  {student}  [fingerprint match, nothing to run]")
            continue
        submitted = parse_query(sql)
        failures = []
        for index, dataset in enumerate(run.datasets):
            expected = result_signature(execute_query(correct_query, dataset.db))
            got = result_signature(execute_query(submitted, dataset.db))
            if expected != got:
                failures.append((index, dataset))
        if not failures:
            print(f"PASS  {student}")
        else:
            index, dataset = failures[0]
            print(f"FAIL  {student}  (wrong on {len(failures)} datasets)")
            print(f"      first failing dataset: {dataset.purpose}")
    print()
    print("The instructor never wrote a single test case by hand.")


if __name__ == "__main__":
    main()
