#!/usr/bin/env python3
"""Regression-suite builder for an application's report queries.

A downstream team keeps a file of the SQL its reporting module issues.
This example generates one mutant-killing suite per query, reuses values
from a production-like sample database so the fixtures read naturally
(Section VI-A of the paper), and emits the datasets as INSERT statements
ready to load into a scratch database for CI.

Run:  python examples/regression_suite.py
"""

import repro
from repro import GenConfig, to_insert_script
from repro.datasets import schema_with_fks, university_sample_database

REPORT_QUERIES = {
    "teaching_load": (
        "SELECT i.dept_name, COUNT(t.course_id) "
        "FROM instructor i, teaches t WHERE i.id = t.id "
        "GROUP BY i.dept_name"
    ),
    "big_courses": (
        "SELECT c.title, c.credits FROM course c WHERE c.credits > 3"
    ),
    "advisor_pairs": (
        "SELECT s.name, i.name "
        "FROM advisor a, student s, instructor i "
        "WHERE a.s_id = s.id AND a.i_id = i.id"
    ),
}


def main():
    schema = schema_with_fks(
        ["teaches.id", "teaches.course_id", "advisor.s_id", "advisor.i_id"]
    )
    sample = university_sample_database(schema)

    # One combined fixture set for the whole module: datasets generated
    # for one query often kill mutants of the others, so the workload
    # generator minimises across queries.
    workload = repro.generate_workload(
        schema, REPORT_QUERIES, config=GenConfig(input_db=sample)
    )
    print(workload.summary())
    print()
    for index, dataset in enumerate(workload.datasets):
        entry = workload.entries[workload.provenance[index][0]]
        source = "sample-db values" if dataset.used_input_db else "synthetic values"
        print(f"-- fixture {index} (for {entry.name}): {dataset.purpose} ({source})")
        print(to_insert_script(dataset.db))
        print()


if __name__ == "__main__":
    main()
