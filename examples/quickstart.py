#!/usr/bin/env python3
"""Quickstart: generate a mutant-killing test suite for one query.

Walks through the paper's running example (Fig. 1): the query joining
instructor, teaches and course on the university schema.  Shows the
datasets XData generates, the join-type mutants they are designed to
kill, and the effect of foreign keys on both.

Run:  python examples/quickstart.py
"""

import repro
from repro.datasets import schema_with_fks
from repro.testing import classify_survivors, format_kill_report

QUERY = (
    "SELECT * FROM instructor i, teaches t, course c "
    "WHERE i.id = t.id AND t.course_id = c.course_id"
)


def run(fk_names, label):
    print(f"=== {label} ===")
    schema = schema_with_fks(fk_names)
    # One facade call generates the suite, enumerates the mutation
    # space (every join tree derivable through equivalence classes —
    # Fig. 2's point — each node flipped to an outer join) and scores
    # the datasets against it.
    scored = repro.evaluate(schema, QUERY)
    suite = scored.run.suite

    print(f"query: {QUERY}")
    print(f"datasets generated: {suite.non_original_count()} (+1 for the original query)")
    for dataset in scored.run.datasets:
        print()
        print(f"--- [{dataset.group}] {dataset.purpose}")
        print(dataset.db.pretty())
    for skip in suite.skipped:
        print(f"\n--- skipped ({skip.reason}): {skip.target}")
        print("    (nullifying a referenced key with its foreign keys is")
        print("     impossible: the mutation group is equivalent)")

    print()
    print(format_kill_report(scored.report, show_survivors=False))

    # Every survivor should be an equivalent mutant; verify by
    # differential testing on random legal databases.
    classification = classify_survivors(scored.space, scored.survivors)
    print(
        f"survivors classified likely-equivalent: "
        f"{len(classification.likely_equivalent)}, "
        f"missed: {len(classification.missed)} (should be 0)"
    )
    print()


def main():
    run([], "no foreign keys")
    run(["teaches.id", "teaches.course_id"], "foreign keys on both join columns")


if __name__ == "__main__":
    main()
